"""Unit tests for the search engines (BFS, Dijkstra, Bi-BFS, bounded)."""

import numpy as np
import pytest

from repro.graphs.generators import grid_graph, path_graph, star_graph
from repro.graphs.graph import Graph
from repro.search.bfs import (
    UNREACHED,
    bfs_distance,
    bfs_distances,
    bfs_levels,
    eccentricity,
    multi_source_bfs_distances,
)
from repro.search.bidirectional import bidirectional_bfs_distance
from repro.search.bounded import (
    bounded_bidirectional_distance,
    bounded_grouped_multi_target_distances,
)
from repro.search.dijkstra import dijkstra_distance, dijkstra_distances, dijkstra_weighted


class TestBFS:
    def test_path_graph_distances(self):
        g = path_graph(5)
        assert bfs_distances(g, 0).tolist() == [0, 1, 2, 3, 4]

    def test_unreachable_marked(self):
        g = Graph(4, [(0, 1), (2, 3)])
        dist = bfs_distances(g, 0)
        assert dist[1] == 1
        assert dist[2] == UNREACHED
        assert dist[3] == UNREACHED

    def test_excluded_vertices_block_paths(self):
        g = path_graph(5)
        excluded = np.zeros(5, dtype=bool)
        excluded[2] = True
        dist = bfs_distances(g, 0, excluded=excluded)
        assert dist[1] == 1
        assert dist[3] == UNREACHED

    def test_point_query_matches_full_sweep(self, ba_graph):
        dist = bfs_distances(ba_graph, 7)
        for t in [0, 50, 150, 299]:
            expected = float(dist[t]) if dist[t] != UNREACHED else float("inf")
            assert bfs_distance(ba_graph, 7, t) == expected

    def test_same_vertex(self, ba_graph):
        assert bfs_distance(ba_graph, 5, 5) == 0.0

    def test_levels_partition_reachable_set(self, ws_graph):
        seen = set()
        for level, frontier in bfs_levels(ws_graph, 0):
            for v in frontier:
                assert v not in seen
                seen.add(int(v))
        dist = bfs_distances(ws_graph, 0)
        assert len(seen) == int((dist != UNREACHED).sum())

    def test_eccentricity_of_path_end(self):
        assert eccentricity(path_graph(6), 0) == 5

    def test_multi_source(self):
        g = path_graph(7)
        dist = multi_source_bfs_distances(g, [0, 6])
        assert dist.tolist() == [0, 1, 2, 3, 2, 1, 0]


class TestDijkstra:
    def test_matches_bfs_on_unit_weights(self, ba_graph):
        bfs = bfs_distances(ba_graph, 3).astype(float)
        bfs[bfs == UNREACHED] = np.inf
        dij = dijkstra_distances(ba_graph, 3)
        assert np.array_equal(bfs, dij)

    def test_point_to_point(self):
        g = path_graph(5)
        assert dijkstra_distance(g, 0, 4) == 4.0
        assert dijkstra_distance(g, 2, 2) == 0.0

    def test_disconnected_is_inf(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert dijkstra_distance(g, 0, 3) == float("inf")

    def test_weighted_adjacency(self):
        adjacency = {0: [(1, 2.0), (2, 5.0)], 1: [(2, 1.0)], 2: []}
        settled = dijkstra_weighted(adjacency, 0)
        assert settled == {0: 0.0, 1: 2.0, 2: 3.0}

    def test_weighted_early_exit(self):
        adjacency = {0: [(1, 1.0)], 1: [(2, 1.0)], 2: [(3, 1.0)], 3: []}
        settled = dijkstra_weighted(adjacency, 0, targets={1})
        assert settled[1] == 1.0
        assert 3 not in settled


class TestBidirectional:
    def test_matches_bfs(self, ba_graph):
        dist = bfs_distances(ba_graph, 11)
        for t in [0, 10, 100, 299]:
            expected = float(dist[t]) if dist[t] != UNREACHED else float("inf")
            assert bidirectional_bfs_distance(ba_graph, 11, t) == expected

    def test_grid_long_distances(self):
        g = grid_graph(6, 6)
        assert bidirectional_bfs_distance(g, 0, 35) == 10.0

    def test_adjacent(self):
        g = path_graph(3)
        assert bidirectional_bfs_distance(g, 0, 1) == 1.0

    def test_disconnected(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert bidirectional_bfs_distance(g, 0, 2) == float("inf")

    def test_star_center(self):
        g = star_graph(10)
        assert bidirectional_bfs_distance(g, 1, 2) == 2.0

    def test_excluded_vertex_forces_detour(self):
        # 0-1-2 and 0-3-4-2: cutting 1 forces the long way.
        g = Graph(5, [(0, 1), (1, 2), (0, 3), (3, 4), (4, 2)])
        excluded = np.zeros(5, dtype=bool)
        excluded[1] = True
        assert bidirectional_bfs_distance(g, 0, 2, excluded=excluded) == 3.0


class TestBoundedSearch:
    def test_exact_when_bound_loose(self):
        g = grid_graph(5, 5)
        assert bounded_bidirectional_distance(g, 0, 24, upper_bound=100.0) == 8.0

    def test_returns_bound_when_tight(self):
        g = path_graph(10)
        # True distance 9; a (fictitious) bound of 4 stops the search.
        assert bounded_bidirectional_distance(g, 0, 9, upper_bound=4.0) == 4.0

    def test_exact_when_bound_equals_distance(self):
        g = path_graph(10)
        assert bounded_bidirectional_distance(g, 0, 9, upper_bound=9.0) == 9.0

    def test_bound_one_short_circuits(self):
        g = path_graph(3)
        assert bounded_bidirectional_distance(g, 0, 1, upper_bound=1.0) == 1.0

    def test_excluded_disconnection_returns_bound(self):
        g = star_graph(5)  # leaves connect only through the centre
        excluded = np.zeros(5, dtype=bool)
        excluded[0] = True
        assert bounded_bidirectional_distance(g, 1, 2, 2.0, excluded=excluded) == 2.0

    def test_unbounded_disconnected_is_inf(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert bounded_bidirectional_distance(g, 0, 2, float("inf")) == float("inf")

    def test_same_vertex(self):
        g = path_graph(3)
        assert bounded_bidirectional_distance(g, 1, 1, 5.0) == 0.0

    def test_excluded_endpoint_rejected(self):
        g = path_graph(3)
        excluded = np.zeros(3, dtype=bool)
        excluded[0] = True
        with pytest.raises(ValueError):
            bounded_bidirectional_distance(g, 0, 2, 5.0, excluded=excluded)

    def test_nonpositive_bound_rejected(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            bounded_bidirectional_distance(g, 0, 2, 0.0)


class TestStackedMultiTargetBounded:
    """Stacked grouped search vs. the per-pair bidirectional engine."""

    def _random_case(self, seed):
        from repro.graphs.generators import erdos_renyi_graph

        rng = np.random.default_rng(seed)
        graph = erdos_renyi_graph(60, 3.0, seed=seed)
        excluded = np.zeros(60, dtype=bool)
        excluded[rng.choice(60, size=4, replace=False)] = True
        return graph, excluded, rng

    def _random_queries(self, excluded, rng, num_groups=5, per_group=4):
        free = np.flatnonzero(~excluded)
        sources = free[rng.choice(len(free), size=num_groups, replace=False)]
        targets, target_group, bounds = [], [], []
        for g, s in enumerate(sources):
            choices = free[free != s]
            for t in rng.choice(choices, size=per_group, replace=False):
                targets.append(int(t))
                target_group.append(g)
                bounds.append(float(rng.integers(1, 9)))
        bounds[0] = float("inf")
        return (
            sources,
            np.asarray(targets),
            np.asarray(target_group),
            np.asarray(bounds),
        )

    @pytest.mark.parametrize("seed", [3, 4, 5, 11])
    def test_stacked_matches_bidirectional(self, seed):
        graph, excluded, rng = self._random_case(seed)
        sources, targets, target_group, bounds = self._random_queries(excluded, rng)
        stacked = bounded_grouped_multi_target_distances(
            graph, sources, targets, target_group, bounds, excluded=excluded
        )
        expected = [
            bounded_bidirectional_distance(
                graph, int(sources[g]), int(t), b, excluded=excluded
            )
            for g, t, b in zip(target_group, targets, bounds)
        ]
        assert stacked.tolist() == expected

    def test_stacked_group_chunking(self):
        graph, excluded, rng = self._random_case(21)
        sources, targets, target_group, bounds = self._random_queries(excluded, rng)
        whole = bounded_grouped_multi_target_distances(
            graph, sources, targets, target_group, bounds, excluded=excluded
        )
        # Tiny cells budget forces one group per chunk; answers must agree.
        chunked = bounded_grouped_multi_target_distances(
            graph, sources, targets, target_group, bounds,
            excluded=excluded, cells_budget=1,
        )
        assert whole.tolist() == chunked.tolist()

    def test_empty_queries(self):
        g = star_graph(5)
        out = bounded_grouped_multi_target_distances(
            g, np.asarray([0]), np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64), np.empty(0),
        )
        assert len(out) == 0

    def test_excluded_endpoints_rejected(self):
        g = star_graph(5)
        excluded = np.zeros(5, dtype=bool)
        excluded[1] = True
        with pytest.raises(ValueError):
            bounded_grouped_multi_target_distances(
                g, np.asarray([1]), np.asarray([2]), np.asarray([0]),
                np.asarray([2.0]), excluded=excluded,
            )
        with pytest.raises(ValueError):
            bounded_grouped_multi_target_distances(
                g, np.asarray([0]), np.asarray([1]), np.asarray([0]),
                np.asarray([2.0]), excluded=excluded,
            )

    def test_out_of_range_rejected(self):
        g = star_graph(5)
        with pytest.raises(ValueError):
            bounded_grouped_multi_target_distances(
                g, np.asarray([0]), np.asarray([5]), np.asarray([0]),
                np.asarray([2.0]),
            )
