"""Tests for ``repro fsck``: every corruption is flagged precisely."""

import json
import struct
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.dynamic import DynamicHighwayCoverOracle
from repro.core.fsck import fsck_disk_csr, fsck_path, fsck_snapshot, fsck_wal
from repro.core.query import HighwayCoverOracle
from repro.core.serialization import (
    _HEADER_STRUCT,
    _MAGIC,
    _section_offsets,
    load_oracle,
    save_oracle,
)
from repro.core.wal import WriteAheadLog
from repro.errors import ReproError
from repro.graphs.generators import barabasi_albert_graph

SECTION_NAMES = ("landmarks", "highway", "offsets", "label ids", "label distances")


def _codes(report, severity="error"):
    return [f.code for f in report.findings if f.severity == severity]


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    """A small clean v2 snapshot plus its header-derived section layout."""
    graph = barabasi_albert_graph(120, 2, seed=31)
    oracle = HighwayCoverOracle(num_landmarks=8).build(graph)
    path = tmp_path_factory.mktemp("fsck") / "index.hl"
    save_oracle(oracle, path)
    header_bytes = 4 + struct.calcsize(_HEADER_STRUCT)
    version, flags, n, k, entries = struct.unpack(
        _HEADER_STRUCT, path.read_bytes()[4:header_bytes]
    )
    sections = _section_offsets(version, n, k, entries, bool(flags & 1))
    return graph, path, sections


class TestSnapshotFsck:
    def test_clean_snapshot_is_ok(self, snapshot):
        _, path, _ = snapshot
        report = fsck_path(path)
        assert report.kind == "snapshot"
        assert report.ok
        assert "clean" in _codes(report, "info")

    def test_truncation_at_every_section_boundary(self, snapshot, tmp_path):
        # Cut the file to end exactly at each section start: fsck must
        # flag the truncation and name precisely the sections that
        # survive in front of the cut.
        graph, path, sections = snapshot
        data = path.read_bytes()
        for index, boundary in enumerate(sections[:-1]):
            clipped = tmp_path / f"cut-{index}.hl"
            clipped.write_bytes(data[:boundary])
            report = fsck_snapshot(clipped)
            assert not report.ok
            assert "truncated-file" in _codes(report)
            salvage = [
                f.message
                for f in report.findings
                if f.severity == "info" and f.code == "salvage"
            ]
            assert len(salvage) == 1
            intact = SECTION_NAMES[:index]
            if intact:
                assert salvage[0] == "intact sections: " + ", ".join(intact)
            else:
                assert salvage[0] == "intact sections: none"
            # load_oracle must refuse the same file with a clear error.
            with pytest.raises(ReproError, match="truncated"):
                load_oracle(graph, clipped)

    def test_mid_section_truncation(self, snapshot, tmp_path):
        graph, path, sections = snapshot
        data = path.read_bytes()
        clipped = tmp_path / "cut-mid.hl"
        clipped.write_bytes(data[: sections[2] + 8])  # 8 bytes into offsets
        report = fsck_snapshot(clipped)
        assert "truncated-file" in _codes(report)
        with pytest.raises(ReproError):
            load_oracle(graph, clipped)

    def test_oversized_file(self, snapshot, tmp_path):
        _, path, _ = snapshot
        bloated = tmp_path / "bloat.hl"
        bloated.write_bytes(path.read_bytes() + b"\x00" * 17)
        report = fsck_snapshot(bloated)
        assert "oversized-file" in _codes(report)
        assert any("17" in f.message for f in report.findings if f.code == "salvage")

    def test_truncated_header(self, tmp_path):
        stub = tmp_path / "stub.hl"
        stub.write_bytes(_MAGIC + b"\x01")
        report = fsck_snapshot(stub)
        assert _codes(report) == ["truncated-header"]

    def test_bad_magic_version_and_flags(self, snapshot, tmp_path):
        _, path, _ = snapshot
        data = bytearray(path.read_bytes())

        bad = tmp_path / "magic.hl"
        bad.write_bytes(b"XXXX" + bytes(data[4:]))
        assert _codes(fsck_snapshot(bad)) == ["bad-magic"]
        # Sniffing cannot classify an unknown magic at all:
        assert fsck_path(bad).kind == "unknown"

        struct.pack_into("<I", data, 4, 73)  # version field
        vers = tmp_path / "version.hl"
        vers.write_bytes(bytes(data))
        assert _codes(fsck_snapshot(vers)) == ["bad-version"]

        data = bytearray(path.read_bytes())
        struct.pack_into("<I", data, 8, 0x80)  # unknown flag bit
        flags = tmp_path / "flags.hl"
        flags.write_bytes(bytes(data))
        assert _codes(fsck_snapshot(flags)) == ["unknown-flags"]

    def test_highway_invariants(self, snapshot, tmp_path):
        _, path, sections = snapshot
        data = bytearray(path.read_bytes())
        # Corrupt one off-diagonal highway cell -> asymmetry.
        struct.pack_into("<H", data, sections[1] + 2, 999)
        bad = tmp_path / "highway.hl"
        bad.write_bytes(bytes(data))
        codes = _codes(fsck_snapshot(bad))
        assert "highway-asymmetric" in codes
        # Corrupt the [0, 0] diagonal cell.
        data = bytearray(path.read_bytes())
        struct.pack_into("<H", data, sections[1], 5)
        bad.write_bytes(bytes(data))
        assert "highway-diagonal" in _codes(fsck_snapshot(bad))

    def test_offsets_invariants(self, snapshot, tmp_path):
        graph, path, sections = snapshot
        bad = tmp_path / "offsets.hl"

        data = bytearray(path.read_bytes())
        struct.pack_into("<q", data, sections[2], 3)  # offsets[0] != 0
        bad.write_bytes(bytes(data))
        assert "offsets-base" in _codes(fsck_snapshot(bad))

        data = bytearray(path.read_bytes())
        struct.pack_into("<q", data, sections[2] + 8, 2**31)  # spike
        bad.write_bytes(bytes(data))
        assert "offsets-order" in _codes(fsck_snapshot(bad))

        data = bytearray(path.read_bytes())
        last = sections[2] + 8 * graph.num_vertices  # offsets[-1] == offsets[n]
        struct.pack_into("<q", data, last, 2**31)
        bad.write_bytes(bytes(data))
        assert "offsets-entries" in _codes(fsck_snapshot(bad))

    def test_id_range_invariant(self, snapshot, tmp_path):
        _, path, sections = snapshot
        data = bytearray(path.read_bytes())
        data[sections[3]] = 200  # narrow id far beyond k=8
        bad = tmp_path / "ids.hl"
        bad.write_bytes(bytes(data))
        assert "id-range" in _codes(fsck_snapshot(bad))


class TestDiskCsrFsck:
    DISK_SECTIONS = ("indptr", "adjacency")

    @pytest.fixture(scope="class")
    def disk_csr(self, tmp_path_factory):
        """A clean .rpdc file plus its header-derived section layout."""
        from repro.graphs.disk_csr import (
            disk_csr_sections,
            read_disk_csr_header,
            write_graph_disk_csr,
        )

        graph = barabasi_albert_graph(90, 3, seed=41, name="fsck-csr")
        path = tmp_path_factory.mktemp("fsck-csr") / "graph.rpdc"
        write_graph_disk_csr(graph, path)
        header = read_disk_csr_header(path)
        sections = disk_csr_sections(
            header.num_vertices,
            header.num_directed_edges,
            header.wide,
            len(header.name.encode("utf-8")),
        )
        return graph, path, sections

    def test_clean_disk_csr_is_ok(self, disk_csr):
        _, path, _ = disk_csr
        report = fsck_path(path)
        assert report.kind == "disk-csr"
        assert report.ok
        assert "clean" in _codes(report, "info")

    def test_truncation_at_every_section_boundary(self, disk_csr, tmp_path):
        # Cut the file to end exactly at each section start: fsck must
        # flag the truncation and name precisely the surviving sections.
        from repro.graphs.disk_csr import open_disk_csr

        graph, path, sections = disk_csr
        data = path.read_bytes()
        for index, boundary in enumerate(sections[:-1]):
            clipped = tmp_path / f"cut-{index}.rpdc"
            clipped.write_bytes(data[:boundary])
            report = fsck_disk_csr(clipped)
            assert not report.ok
            assert "truncated-file" in _codes(report)
            salvage = [
                f.message
                for f in report.findings
                if f.severity == "info" and f.code == "salvage"
            ]
            assert len(salvage) == 1
            intact = self.DISK_SECTIONS[:index]
            if intact:
                assert salvage[0] == "intact sections: " + ", ".join(intact)
            else:
                assert salvage[0] == "intact sections: none"
            # open_disk_csr must refuse the same file with a clear error.
            with pytest.raises(ReproError):
                open_disk_csr(clipped)

    def test_mid_adjacency_truncation(self, disk_csr, tmp_path):
        from repro.graphs.disk_csr import open_disk_csr

        _, path, sections = disk_csr
        clipped = tmp_path / "cut-mid.rpdc"
        clipped.write_bytes(path.read_bytes()[: sections[1] + 6])
        report = fsck_disk_csr(clipped)
        assert "truncated-file" in _codes(report)
        salvage = [f.message for f in report.findings if f.code == "salvage"]
        assert salvage == ["intact sections: indptr"]
        with pytest.raises(ReproError):
            open_disk_csr(clipped)

    def test_oversized_file(self, disk_csr, tmp_path):
        _, path, _ = disk_csr
        bloated = tmp_path / "bloat.rpdc"
        bloated.write_bytes(path.read_bytes() + b"\x00" * 23)
        report = fsck_disk_csr(bloated)
        assert "oversized-file" in _codes(report)
        assert any("23" in f.message for f in report.findings if f.code == "salvage")

    def test_truncated_header_and_name(self, disk_csr, tmp_path):
        from repro.graphs.disk_csr import DISK_CSR_MAGIC

        stub = tmp_path / "stub.rpdc"
        stub.write_bytes(DISK_CSR_MAGIC + b"\x01")
        assert _codes(fsck_disk_csr(stub)) == ["truncated-header"]

        _, path, _ = disk_csr
        named = tmp_path / "name.rpdc"
        named.write_bytes(path.read_bytes()[:36])  # inside the name blob
        assert _codes(fsck_disk_csr(named)) == ["truncated-name"]

    def test_bad_magic_version_and_flags(self, disk_csr, tmp_path):
        _, path, _ = disk_csr
        data = bytearray(path.read_bytes())

        bad = tmp_path / "magic.rpdc"
        bad.write_bytes(b"XXXX" + bytes(data[4:]))
        assert _codes(fsck_disk_csr(bad)) == ["bad-magic"]
        assert fsck_path(bad).kind == "unknown"

        struct.pack_into("<I", data, 4, 73)  # version field
        vers = tmp_path / "version.rpdc"
        vers.write_bytes(bytes(data))
        assert _codes(fsck_disk_csr(vers)) == ["bad-version"]

        data = bytearray(path.read_bytes())
        struct.pack_into("<I", data, 8, 0x80)  # unknown flag bit
        flags = tmp_path / "flags.rpdc"
        flags.write_bytes(bytes(data))
        assert _codes(fsck_disk_csr(flags)) == ["unknown-flags"]

    def test_indptr_invariants(self, disk_csr, tmp_path):
        graph, path, sections = disk_csr
        indptr_start = sections[0]
        bad = tmp_path / "indptr.rpdc"

        data = bytearray(path.read_bytes())
        struct.pack_into("<q", data, indptr_start, 5)  # indptr[0] != 0
        bad.write_bytes(bytes(data))
        assert "indptr-base" in _codes(fsck_disk_csr(bad))

        data = bytearray(path.read_bytes())
        last = indptr_start + 8 * graph.num_vertices
        struct.pack_into("<q", data, last, 2**40)  # indptr[-1] != directed
        bad.write_bytes(bytes(data))
        assert "indptr-entries" in _codes(fsck_disk_csr(bad))

        data = bytearray(path.read_bytes())
        struct.pack_into("<q", data, indptr_start + 8, 2**40)  # spike
        bad.write_bytes(bytes(data))
        assert "indptr-order" in _codes(fsck_disk_csr(bad))

    def test_adjacency_invariants(self, disk_csr, tmp_path):
        graph, path, sections = disk_csr
        indices_start = sections[1]
        bad = tmp_path / "adjacency.rpdc"

        data = bytearray(path.read_bytes())
        struct.pack_into("<i", data, indices_start, graph.num_vertices + 7)
        bad.write_bytes(bytes(data))
        report = fsck_disk_csr(bad)
        assert "index-range" in _codes(report)

        # Swap the first adjacency row's first two entries: row no
        # longer strictly increasing, and the message names the vertex.
        data = bytearray(path.read_bytes())
        first = data[indices_start : indices_start + 4]
        second = data[indices_start + 4 : indices_start + 8]
        assert first != second
        data[indices_start : indices_start + 4] = second
        data[indices_start + 4 : indices_start + 8] = first
        bad.write_bytes(bytes(data))
        report = fsck_disk_csr(bad)
        assert "row-order" in _codes(report)
        assert any(
            "vertex 0" in f.message for f in report.findings if f.code == "row-order"
        )


class TestWalFsck:
    def _log(self, tmp_path, count=3):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            for i in range(count):
                wal.append("insert_edge", i, i + 10)
        return path

    def test_clean_wal(self, tmp_path):
        report = fsck_path(self._log(tmp_path))
        assert report.kind == "wal"
        assert report.ok
        assert any("3 records" in f.message for f in report.findings)

    def test_torn_tail_flagged_with_salvage(self, tmp_path):
        path = self._log(tmp_path)
        path.write_bytes(path.read_bytes()[:-9])  # mid-record
        report = fsck_wal(path)
        assert _codes(report) == ["torn-tail"]
        assert any(
            "2 complete records" in f.message
            for f in report.findings
            if f.code == "salvage"
        )

    def test_checksum_mismatch_flagged(self, tmp_path):
        path = self._log(tmp_path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        report = fsck_wal(path)
        assert _codes(report) == ["bad-checksum"]
        assert any(
            "2 complete records" in f.message
            for f in report.findings
            if f.code == "salvage"
        )

    def test_impossible_length_flagged(self, tmp_path):
        path = self._log(tmp_path, count=1)
        data = bytearray(path.read_bytes())
        struct.pack_into("<I", data, 8, 4096)
        path.write_bytes(bytes(data))
        assert _codes(fsck_wal(path)) == ["bad-length"]

    def test_bad_header_flagged(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"RPWL" + struct.pack("<I", 9))
        assert _codes(fsck_wal(path)) == ["bad-version"]


class TestCommittedFixtures:
    """The corrupt files under tests/fixtures/durability stay flagged.

    The fixtures are generated by ``tools/make_durability_fixtures.py``
    and committed, so fsck's verdicts are pinned against bytes that
    never change — the CI ``durability-smoke`` job runs the CLI over
    the same set.
    """

    FIXTURE_DIR = Path(__file__).resolve().parent / "fixtures" / "durability"

    def _manifest(self):
        with (self.FIXTURE_DIR / "manifest.json").open() as handle:
            return json.load(handle)

    def test_manifest_covers_every_fixture(self):
        manifest = self._manifest()
        files = {
            p.name for p in self.FIXTURE_DIR.iterdir() if p.name != "manifest.json"
        }
        assert files == set(manifest)

    def test_every_fixture_gets_its_expected_verdict(self):
        for name, expected_code in self._manifest().items():
            report = fsck_path(self.FIXTURE_DIR / name)
            if expected_code is None:
                assert report.ok, f"{name}: {report.findings}"
            else:
                assert expected_code in _codes(report), (
                    f"{name}: expected {expected_code!r}, "
                    f"got {_codes(report)!r}"
                )

    def test_cli_exits_nonzero_on_each_corrupt_fixture(self):
        for name, expected_code in self._manifest().items():
            result = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "fsck",
                    str(self.FIXTURE_DIR / name),
                ],
                capture_output=True,
                text=True,
            )
            if expected_code is None:
                assert result.returncode == 0, result.stderr
            else:
                assert result.returncode == 1, (name, result.stdout)
                assert expected_code in result.stderr  # names the invariant


class TestFsckCli:
    def _run(self, *paths):
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "fsck", *map(str, paths)],
            capture_output=True,
            text=True,
        )

    def test_exit_zero_on_clean_files(self, tmp_path):
        graph = barabasi_albert_graph(60, 2, seed=32)
        oracle = DynamicHighwayCoverOracle(num_landmarks=4).build(graph)
        index = tmp_path / "index.hl"
        save_oracle(oracle, index)
        with WriteAheadLog(tmp_path / "wal.log") as wal:
            wal.append("insert_edge", 0, 50)
        result = self._run(index, tmp_path / "wal.log")
        assert result.returncode == 0, result.stderr
        assert result.stdout.count("OK") == 2

    def test_exit_one_on_corruption(self, tmp_path):
        graph = barabasi_albert_graph(60, 2, seed=33)
        oracle = HighwayCoverOracle(num_landmarks=4).build(graph)
        index = tmp_path / "index.hl"
        save_oracle(oracle, index)
        index.write_bytes(index.read_bytes()[:100])
        result = self._run(index)
        assert result.returncode == 1
        assert "CORRUPT" in result.stdout
        assert "truncated-file" in result.stderr

    def test_exit_two_on_unreadable(self, tmp_path):
        result = self._run(tmp_path / "missing.hl")
        assert result.returncode == 2
        assert "unreadable" in result.stderr
