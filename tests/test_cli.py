"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.io import write_edge_list


@pytest.fixture()
def edgelist(tmp_path):
    graph = barabasi_albert_graph(120, 3, seed=6, name="cli-test")
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path)
    return path


class TestStats:
    def test_prints_table(self, edgelist, capsys):
        assert main(["stats", str(edgelist)]) == 0
        out = capsys.readouterr().out
        assert "m/n" in out
        assert "120" in out


class TestBuildAndQuery:
    def test_build_then_query(self, edgelist, tmp_path, capsys):
        index = tmp_path / "index.hl"
        assert main(["build", str(edgelist), "-o", str(index), "-k", "6"]) == 0
        assert index.exists()
        out = capsys.readouterr().out
        assert "built HL(k=6" in out

        assert main(["query", str(edgelist), str(index), "0", "100", "5", "50"]) == 0
        out = capsys.readouterr().out
        assert "d(0, 100) =" in out
        assert "d(5, 50) =" in out

    def test_query_results_are_exact(self, edgelist, tmp_path, capsys):
        from repro.graphs.io import read_edge_list
        from repro.search.bfs import bfs_distance

        index = tmp_path / "index.hl"
        main(["build", str(edgelist), "-o", str(index), "-k", "6"])
        capsys.readouterr()
        main(["query", str(edgelist), str(index), "0", "100"])
        out = capsys.readouterr().out.strip()
        reported = float(out.rsplit("=", 1)[1])
        graph = read_edge_list(edgelist)
        assert reported == bfs_distance(graph, 0, 100)

    def test_odd_vertex_count_fails(self, edgelist, tmp_path, capsys):
        index = tmp_path / "index.hl"
        main(["build", str(edgelist), "-o", str(index)])
        capsys.readouterr()
        assert main(["query", str(edgelist), str(index), "0", "1", "2"]) == 2

    def test_build_with_strategy(self, edgelist, tmp_path):
        index = tmp_path / "index.hl"
        assert (
            main(
                [
                    "build",
                    str(edgelist),
                    "-o",
                    str(index),
                    "-k",
                    "5",
                    "--strategy",
                    "closeness",
                ]
            )
            == 0
        )


class TestDatasetCommands:
    def test_datasets_lists_twelve(self, capsys):
        assert main(["datasets"]) == 0
        names = capsys.readouterr().out.split()
        assert len(names) == 12
        assert "ClueWeb09" in names

    def test_bench_dataset(self, capsys):
        assert (
            main(["bench-dataset", "Skitter", "--scale", "0.05", "--pairs", "20"]) == 0
        )
        out = capsys.readouterr().out
        assert "coverage" in out
        assert "Skitter" in out
