"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.io import write_edge_list


@pytest.fixture()
def edgelist(tmp_path):
    graph = barabasi_albert_graph(120, 3, seed=6, name="cli-test")
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path)
    return path


class TestStats:
    def test_prints_table(self, edgelist, capsys):
        assert main(["stats", str(edgelist)]) == 0
        out = capsys.readouterr().out
        assert "m/n" in out
        assert "120" in out


class TestBuildAndQuery:
    def test_build_then_query(self, edgelist, tmp_path, capsys):
        index = tmp_path / "index.hl"
        assert main(["build", str(edgelist), "-o", str(index), "-k", "6"]) == 0
        assert index.exists()
        out = capsys.readouterr().out
        assert "built HL/stacked(k=6" in out

        assert main(["query", str(edgelist), str(index), "0", "100", "5", "50"]) == 0
        out = capsys.readouterr().out
        assert "d(0, 100) =" in out
        assert "d(5, 50) =" in out

    def test_query_results_are_exact(self, edgelist, tmp_path, capsys):
        from repro.graphs.io import read_edge_list
        from repro.search.bfs import bfs_distance

        index = tmp_path / "index.hl"
        main(["build", str(edgelist), "-o", str(index), "-k", "6"])
        capsys.readouterr()
        main(["query", str(edgelist), str(index), "0", "100"])
        out = capsys.readouterr().out.strip()
        reported = float(out.rsplit("=", 1)[1])
        graph = read_edge_list(edgelist)
        assert reported == bfs_distance(graph, 0, 100)

    def test_odd_vertex_count_fails(self, edgelist, tmp_path, capsys):
        index = tmp_path / "index.hl"
        main(["build", str(edgelist), "-o", str(index)])
        capsys.readouterr()
        assert main(["query", str(edgelist), str(index), "0", "1", "2"]) == 2

    def test_build_with_strategy(self, edgelist, tmp_path):
        index = tmp_path / "index.hl"
        assert (
            main(
                [
                    "build",
                    str(edgelist),
                    "-o",
                    str(index),
                    "-k",
                    "5",
                    "--strategy",
                    "closeness",
                ]
            )
            == 0
        )

    def test_store_and_format_version_flags(self, edgelist, tmp_path, capsys):
        v1 = tmp_path / "index.v1.hl"
        v2 = tmp_path / "index.v2.hl"
        args = ["build", str(edgelist), "-k", "5", "--store", "landmark"]
        assert main(args + ["-o", str(v2)]) == 0
        assert main(args + ["-o", str(v1), "--format-version", "1"]) == 0
        out = capsys.readouterr().out
        assert "store=landmark" in out
        assert "(v1)" in out and "(v2)" in out
        # Both versions answer queries; only v2 supports --mmap.
        assert main(["query", str(edgelist), str(v1), "0", "100"]) == 0
        assert main(["query", str(edgelist), str(v2), "0", "100", "--mmap"]) == 0
        plain = capsys.readouterr().out.splitlines()
        assert plain[0] == plain[1]

    def test_mmap_query_batch(self, edgelist, tmp_path, capsys):
        index = tmp_path / "index.hl"
        main(["build", str(edgelist), "-o", str(index), "-k", "5"])
        capsys.readouterr()
        assert (
            main(
                [
                    "query-batch",
                    str(edgelist),
                    str(index),
                    "--random",
                    "30",
                    "--mmap",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 30


class TestQueryBatch:
    def test_random_pairs(self, edgelist, tmp_path, capsys):
        index = tmp_path / "index.hl"
        main(["build", str(edgelist), "-o", str(index), "-k", "6"])
        capsys.readouterr()
        assert (
            main(
                [
                    "query-batch",
                    str(edgelist),
                    str(index),
                    "--random",
                    "25",
                    "--seed",
                    "3",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        lines = captured.out.strip().splitlines()
        assert len(lines) == 25
        assert "pairs=25" in captured.err
        assert "coverage=" in captured.err

    def test_pairs_file_matches_scalar_query(self, edgelist, tmp_path, capsys):
        from repro.core.serialization import load_oracle
        from repro.graphs.io import read_edge_list

        index = tmp_path / "index.hl"
        main(["build", str(edgelist), "-o", str(index), "-k", "6"])
        pairs_file = tmp_path / "pairs.txt"
        pairs_file.write_text("0 100\n5 50\n7 7\n")
        capsys.readouterr()
        assert (
            main(["query-batch", str(edgelist), str(index), "--pairs-file", str(pairs_file)])
            == 0
        )
        out = capsys.readouterr().out.strip().splitlines()
        graph = read_edge_list(edgelist)
        oracle = load_oracle(graph, index)
        for line, (s, t) in zip(out, [(0, 100), (5, 50), (7, 7)]):
            assert line.split() == [str(s), str(t), f"{oracle.query(s, t):.0f}"]

    @pytest.mark.parametrize(
        "content", ["1 2 3\n4 5 6\n", "1.5 2\n", "s t\n0 1\n"],
        ids=["three-columns", "float", "header"],
    )
    def test_malformed_pairs_file(self, edgelist, tmp_path, capsys, content):
        index = tmp_path / "index.hl"
        main(["build", str(edgelist), "-o", str(index)])
        pairs_file = tmp_path / "pairs.txt"
        pairs_file.write_text(content)
        capsys.readouterr()
        assert (
            main(["query-batch", str(edgelist), str(index), "--pairs-file", str(pairs_file)])
            == 2
        )
        assert "two vertex ids per line" in capsys.readouterr().err

    def test_empty_pairs_file(self, edgelist, tmp_path, capsys):
        index = tmp_path / "index.hl"
        main(["build", str(edgelist), "-o", str(index)])
        pairs_file = tmp_path / "pairs.txt"
        pairs_file.write_text("")
        capsys.readouterr()
        assert (
            main(["query-batch", str(edgelist), str(index), "--pairs-file", str(pairs_file)])
            == 0
        )
        captured = capsys.readouterr()
        assert captured.out.strip() == ""
        assert "pairs=0" in captured.err


class TestDatasetCommands:
    def test_datasets_lists_twelve(self, capsys):
        assert main(["datasets"]) == 0
        names = capsys.readouterr().out.split()
        assert len(names) == 12
        assert "ClueWeb09" in names

    def test_bench_dataset(self, capsys):
        assert (
            main(["bench-dataset", "Skitter", "--scale", "0.05", "--pairs", "20"]) == 0
        )
        out = capsys.readouterr().out
        assert "coverage" in out
        assert "Skitter" in out


class TestServeBench:
    def test_serve_bench_verifies_exactness(self, capsys):
        assert (
            main(
                [
                    "serve-bench",
                    "--n", "400",
                    "--queries", "200",
                    "--threads", "4",
                    "-k", "6",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "QPS" in out
        assert "200/200 match looped oracle.query" in out

    def test_serve_bench_on_edge_list(self, edgelist, capsys):
        assert (
            main(
                [
                    "serve-bench",
                    "--graph", str(edgelist),
                    "--queries", "100",
                    "--threads", "2",
                    "-k", "4",
                ]
            )
            == 0
        )
        assert "match looped oracle.query" in capsys.readouterr().out


class TestThreadFlags:
    def test_kernels_table_reports_releases_gil(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "releases_gil" in out
        assert "numpy" in out

    def test_query_batch_threads_matches_sequential(
        self, edgelist, tmp_path, capsys
    ):
        index = tmp_path / "index.hl"
        main(["build", str(edgelist), "-o", str(index), "-k", "6"])
        capsys.readouterr()
        args = [
            "query-batch", str(edgelist), str(index),
            "--random", "40", "--seed", "11",
        ]
        assert main(args) == 0
        sequential = capsys.readouterr().out
        assert main(args + ["--threads", "2"]) == 0
        threaded = capsys.readouterr()
        assert threaded.out == sequential  # byte-identical answers
        assert "threads=2" in threaded.err

    def test_query_batch_rejects_bad_threads(self, edgelist, tmp_path, capsys):
        index = tmp_path / "index.hl"
        main(["build", str(edgelist), "-o", str(index), "-k", "6"])
        capsys.readouterr()
        with pytest.raises(ValueError):
            main(
                [
                    "query-batch", str(edgelist), str(index),
                    "--random", "10", "--threads", "0",
                ]
            )

    def test_serve_bench_exec_threads(self, capsys):
        assert (
            main(
                [
                    "serve-bench",
                    "--n", "300",
                    "--queries", "150",
                    "--threads", "2",
                    "--exec-threads", "2",
                    "-k", "5",
                ]
            )
            == 0
        )
        assert "150/150 match looped oracle.query" in capsys.readouterr().out


class TestMethods:
    def test_methods_lists_registry(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        for name in ("hl", "hl-dyn", "pll", "bibfs", "dijkstra"):
            assert name in out
        assert "snapshot" in out  # capability columns


class TestNetCommands:
    def test_query_remote_against_live_server(self, edgelist, tmp_path, capsys):
        from repro.api import open_oracle
        from repro.serving.net import NetServer

        oracle = open_oracle(str(edgelist))
        with NetServer(oracle).running_in_thread() as (host, port):
            assert main(
                ["query", "0", "100", "5", "50", "--remote", f"{host}:{port}"]
            ) == 0
            out = capsys.readouterr().out
            assert f"d(0, 100) = {oracle.query(0, 100):.0f}" in out
            assert f"d(5, 50) = {oracle.query(5, 50):.0f}" in out

    def test_query_remote_rejects_bad_inputs(self, capsys):
        assert main(["query", "0", "1", "--remote", "nocolon"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err
        assert main(["query", "not-a-vertex", "1", "--remote", "h:1"]) == 2
        assert "vertex ids" in capsys.readouterr().err
        assert main(["query", "0", "1", "2", "--remote", "h:1"]) == 2
        assert "even number" in capsys.readouterr().err

    def test_net_bench_smoke(self, capsys, tmp_path):
        out_file = tmp_path / "net.txt"
        assert main(
            [
                "net-bench", "--n", "400", "-k", "6", "--readers", "2",
                "--rounds", "4", "--batch-size", "16", "--rollovers", "1",
                "--out", str(out_file),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "failed requests: 0" in out
        assert "reconnect" in out
        assert out_file.exists()
        recorded = out_file.read_text()
        assert "byte-identity" in recorded and "p50_ms" in recorded
