"""Tests for the experiment harness and the table/figure drivers.

Drivers run on tiny configurations (two small surrogates, few pairs) so
the suite stays fast; the full-size runs live in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.experiments import figure1, figure6, figure7, figure8, figure9, table1, table2, table3
from repro.experiments.harness import (
    DNF,
    ExperimentConfig,
    make_method,
    measure_method,
)
from repro.datasets.registry import load_dataset
from repro.graphs.sampling import sample_vertex_pairs


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(
        scale=0.03,
        num_landmarks=5,
        num_query_pairs=20,
        num_online_pairs=5,
        construction_budget_s=30,
        datasets=["Skitter", "Hollywood"],
    )


class TestHarness:
    def test_make_method_known_names(self, tiny_config):
        for name in ["HL", "HL-P", "HL(8)", "FD", "PLL", "IS-L", "Bi-BFS", "BFS", "Dijkstra"]:
            method = make_method(name, tiny_config)
            assert hasattr(method, "build")
            assert hasattr(method, "query")

    def test_make_method_unknown_raises(self, tiny_config):
        with pytest.raises(KeyError):
            make_method("HHL", tiny_config)

    def test_measure_method_happy_path(self, tiny_config):
        graph = load_dataset("Skitter", scale=0.03)
        pairs = sample_vertex_pairs(graph, 10, seed=1)
        meas = measure_method("HL", graph, pairs, tiny_config)
        assert meas.finished
        assert meas.construction_seconds > 0
        assert meas.avg_query_ms is not None
        assert meas.size_bytes > 0
        assert meas.ct_cell() != DNF

    def test_measure_method_dnf(self):
        config = ExperimentConfig(
            scale=0.03, num_landmarks=5, construction_budget_s=1e-9
        )
        graph = load_dataset("Skitter", scale=0.03)
        meas = measure_method("PLL", graph, np.empty((0, 2)), config)
        assert not meas.finished
        assert meas.ct_cell() == DNF
        assert meas.qt_cell() == "-"


class TestTableDrivers:
    def test_table1(self, tiny_config):
        rows = table1.run(tiny_config)
        assert len(rows) == 2
        rendered = table1.render(rows)
        assert "Skitter" in rendered and "m/n" in rendered

    def test_table2(self, tiny_config):
        rows = table2.run(tiny_config)
        rendered = table2.render(rows)
        assert "CT[s] HL-P" in rendered
        assert "QT[ms] Bi-BFS" in rendered
        for row in rows:
            hl = row.measurements["HL"]
            assert hl.finished
            assert hl.average_label_size > 0

    def test_table3_size_ordering(self, tiny_config):
        rows = table3.run(tiny_config)
        for row in rows:
            hl8 = row.measurements["HL(8)"].size_bytes
            hl = row.measurements["HL"].size_bytes
            fd = row.measurements["FD"].size_bytes
            assert hl8 < hl < fd  # the paper's headline ordering
        assert "HL(8)" in table3.render(rows)


class TestFigureDrivers:
    def test_figure1(self, tiny_config):
        result = figure1.run(tiny_config)
        assert result.hl_hwc_minimal_verified
        methods = {m.method for m in result.panel_a}
        assert {"HL", "FD", "Bi-BFS"} <= methods
        assert "HWC-minimal" in figure1.render(result)

    def test_figure6(self, tiny_config):
        series = figure6.run(tiny_config)
        for s in series:
            assert sum(s.distribution.values()) == pytest.approx(1.0)
            assert 1 <= s.modal_distance() <= 10  # small-world regime
        assert "d=" in figure6.render(series)

    def test_figure7_linear_construction(self, tiny_config):
        rows = figure7.run(tiny_config)
        for row in rows:
            cts = [row.construction_seconds[k] for k in sorted(row.construction_seconds)]
            assert all(ct > 0 for ct in cts)
            # More landmarks never get *cheaper* by much (linear trend).
            assert cts[-1] >= cts[0] * 0.8
        assert "CT[s] k=10" in figure7.render(rows)

    def test_figure8_hl_grows_with_landmarks(self, tiny_config):
        rows = figure8.run(tiny_config)
        for row in rows:
            sizes = [row.hl_size_bytes[k] for k in sorted(row.hl_size_bytes)]
            # Sizes trend upward with k. (Strict monotonicity can break on
            # tiny graphs: a new landmark may prune other landmarks'
            # entries; at the paper's scale growth is linear.)
            assert sizes[-1] > sizes[0]
            assert row.fd_size_bytes > 0
        assert "FD-20" in figure8.render(rows)

    def test_figure9_coverage_monotone_and_fd_competitive(self, tiny_config):
        rows = figure9.run(tiny_config)
        for row in rows:
            cov = [row.hl_coverage[k] for k in sorted(row.hl_coverage)]
            assert all(0.0 <= c <= 1.0 for c in cov)
            # Coverage trends upward with more landmarks.
            assert cov[-1] >= cov[0] - 0.05
        assert "HL-50" in figure9.render(rows)
