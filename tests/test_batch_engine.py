"""Randomized cross-validation and edge cases for the batch query engine.

The contract under test: ``oracle.query_many(pairs)`` is bitwise
identical to looping ``oracle.query`` over the rows, which in turn equals
plain-BFS ground truth on the full graph — over random graph families,
disconnected graphs, and landmark counts from k=1 to k=n.
"""

import numpy as np
import pytest

from repro.core.batch import batch_query, batch_upper_bounds, coverage_ratio
from repro.core.batch_engine import BatchQueryEngine, as_pair_array
from repro.core.query import HighwayCoverOracle
from repro.errors import VertexError
from repro.graphs.generators import barabasi_albert_graph, erdos_renyi_graph
from repro.graphs.graph import Graph
from repro.graphs.sampling import sample_vertex_pairs
from repro.search.bfs import UNREACHED, bfs_distances


def disconnected_graph(seed: int) -> Graph:
    """Two random components plus a few isolated vertices."""
    left = barabasi_albert_graph(70, 2, seed=seed)
    right = erdos_renyi_graph(50, 3.0, seed=seed + 1)
    edges = list(left.edges()) + [(u + 70, v + 70) for u, v in right.edges()]
    return Graph(126, edges, name="disconnected")  # 120..125 isolated


GRAPH_FACTORIES = [
    pytest.param(lambda: erdos_renyi_graph(90, 4.0, seed=13), id="erdos-renyi"),
    pytest.param(lambda: barabasi_albert_graph(120, 2, seed=29), id="barabasi-albert"),
    pytest.param(lambda: disconnected_graph(5), id="disconnected"),
]


def ground_truth_distances(graph: Graph, pairs: np.ndarray) -> np.ndarray:
    """Plain BFS distances on the full graph, inf for unreachable."""
    out = np.empty(len(pairs), dtype=float)
    by_source = {}
    for i, (s, t) in enumerate(pairs):
        s, t = int(s), int(t)
        if s not in by_source:
            dist = bfs_distances(graph, s).astype(float)
            dist[dist == UNREACHED] = np.inf
            by_source[s] = dist
        out[i] = by_source[s][t]
    return out


def exercise_pairs(graph: Graph, oracle: HighwayCoverOracle, seed: int) -> np.ndarray:
    """Random pairs plus deliberate special cases (s==t, landmarks, dups)."""
    pairs = sample_vertex_pairs(graph, 250, seed=seed)
    landmarks = oracle.highway.landmarks
    special = np.asarray(
        [
            [4, 4],
            [int(landmarks[0]), int(landmarks[-1])],
            [int(landmarks[0]), 7],
            [9, int(landmarks[-1])],
        ],
        dtype=np.int64,
    )
    return np.vstack([pairs, special, pairs[:10], pairs[:10, ::-1]])


class TestRandomizedCrossValidation:
    @pytest.mark.parametrize("make_graph", GRAPH_FACTORIES)
    @pytest.mark.parametrize("num_landmarks", ["one", "few", "all"])
    def test_engine_equals_scalar_equals_bfs(self, make_graph, num_landmarks):
        graph = make_graph()
        k = {"one": 1, "few": 6, "all": graph.num_vertices}[num_landmarks]
        oracle = HighwayCoverOracle(num_landmarks=k).build(graph)
        pairs = exercise_pairs(graph, oracle, seed=17)

        batch = oracle.query_many(pairs)
        scalar = np.asarray([oracle.query(int(s), int(t)) for s, t in pairs])
        truth = ground_truth_distances(graph, pairs)
        # Bitwise identity, inf included: array_equal treats inf == inf.
        assert np.array_equal(batch, scalar)
        assert np.array_equal(batch, truth)

    @pytest.mark.parametrize("make_graph", GRAPH_FACTORIES)
    def test_bounds_match_scalar(self, make_graph):
        graph = make_graph()
        oracle = HighwayCoverOracle(num_landmarks=5).build(graph)
        pairs = exercise_pairs(graph, oracle, seed=23)
        bounds = batch_upper_bounds(oracle, pairs)
        for i, (s, t) in enumerate(pairs):
            assert bounds[i] == oracle.upper_bound(int(s), int(t))

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_many_seeds_small_graphs(self, seed):
        graph = erdos_renyi_graph(40, 3.0, seed=seed)
        oracle = HighwayCoverOracle(num_landmarks=3).build(graph)
        pairs = sample_vertex_pairs(graph, 120, seed=seed)
        batch = oracle.query_many(pairs)
        assert np.array_equal(batch, ground_truth_distances(graph, pairs))

    def test_deep_bound_fallback_path(self):
        """Force the bidirectional fallback and check it stays exact."""
        graph = barabasi_albert_graph(150, 2, seed=3)
        oracle = HighwayCoverOracle(num_landmarks=4).build(graph)
        engine = BatchQueryEngine(
            oracle.graph, oracle.labelling, oracle.highway, max_stacked_expansions=0
        )
        pairs = sample_vertex_pairs(graph, 200, seed=11)
        distances, _ = engine.query_many(pairs)
        assert np.array_equal(distances, ground_truth_distances(graph, pairs))


class TestEdgeCases:
    @pytest.fixture(scope="class")
    def oracle(self):
        return HighwayCoverOracle(num_landmarks=5).build(disconnected_graph(9))

    def test_empty_pairs(self, oracle):
        empty = np.empty((0, 2), dtype=np.int64)
        assert len(oracle.query_many(empty)) == 0
        distances, covered = oracle.query_many(empty, return_coverage=True)
        assert len(distances) == 0 and len(covered) == 0
        assert coverage_ratio(oracle, empty) == 0.0
        # Empty float arrays are accepted too (np.empty defaults to float).
        assert len(oracle.query_many(np.empty((0, 2)))) == 0

    def test_same_vertex_pairs(self, oracle):
        landmark = int(oracle.highway.landmarks[0])
        pairs = np.asarray([[3, 3], [landmark, landmark], [125, 125]])
        distances, covered = oracle.query_many(pairs, return_coverage=True)
        assert distances.tolist() == [0.0, 0.0, 0.0]
        assert covered.all()

    def test_duplicate_pairs(self, oracle):
        pairs = np.asarray([[2, 50], [2, 50], [50, 2], [2, 50]])
        distances = oracle.query_many(pairs)
        assert len(set(distances.tolist())) == 1
        assert distances[0] == oracle.query(2, 50)

    def test_both_endpoints_landmarks(self, oracle):
        landmarks = [int(r) for r in oracle.highway.landmarks]
        pairs = np.asarray([[r1, r2] for r1 in landmarks for r2 in landmarks])
        distances, covered = oracle.query_many(pairs, return_coverage=True)
        assert covered.all()
        for (r1, r2), d in zip(pairs, distances):
            assert d == oracle.highway.distance(int(r1), int(r2))

    def test_unreachable_pairs_are_inf(self, oracle):
        # 0 lives in the left component, 80 in the right, 125 is isolated.
        pairs = np.asarray([[0, 80], [0, 125], [125, 121]])
        distances = oracle.query_many(pairs)
        assert np.isinf(distances).all()

    def test_coverage_mask_agrees_with_is_covered(self, oracle):
        pairs = exercise_pairs(oracle.graph, oracle, seed=31)
        _, covered = oracle.query_many(pairs, return_coverage=True)
        expected = np.asarray(
            [oracle.is_covered(int(s), int(t)) for s, t in pairs]
        )
        assert np.array_equal(covered, expected)

    def test_coverage_ratio_matches_figure9_statistic(self, oracle):
        pairs = sample_vertex_pairs(oracle.graph, 150, seed=2)
        expected = np.mean(
            [oracle.is_covered(int(s), int(t)) for s, t in pairs]
        )
        assert coverage_ratio(oracle, pairs) == pytest.approx(float(expected))


class TestValidation:
    @pytest.fixture(scope="class")
    def oracle(self):
        return HighwayCoverOracle(num_landmarks=4).build(
            barabasi_albert_graph(60, 2, seed=8)
        )

    @pytest.mark.parametrize(
        "bad",
        [
            np.asarray([1, 2, 3]),
            np.zeros((3, 3), dtype=np.int64),
            np.zeros((2, 2, 2), dtype=np.int64),
        ],
        ids=["flat", "k3", "3d"],
    )
    def test_bad_shapes_rejected_everywhere(self, oracle, bad):
        for fn in (batch_query, batch_upper_bounds, coverage_ratio):
            with pytest.raises(ValueError):
                fn(oracle, bad)

    def test_float_pairs_rejected(self, oracle):
        bad = np.asarray([[0.5, 2.0]])
        for fn in (batch_query, batch_upper_bounds, coverage_ratio):
            with pytest.raises(ValueError):
                fn(oracle, bad)

    def test_out_of_range_vertices_rejected(self, oracle):
        with pytest.raises(VertexError):
            batch_upper_bounds(oracle, np.asarray([[0, 60]]))
        with pytest.raises(VertexError):
            batch_query(oracle, np.asarray([[-1, 2]]))

    def test_as_pair_array_normalizes(self):
        out = as_pair_array([(0, 1), (2, 3)], num_vertices=4)
        assert out.dtype == np.int64 and out.shape == (2, 2)
        empty = as_pair_array(np.empty((0, 2)), num_vertices=4)
        assert empty.dtype == np.int64 and empty.shape == (0, 2)
