"""Integration tests for the network front door (server + clients).

All tests run a real :class:`~repro.serving.net.NetServer` on loopback.
The bars:

* **Byte-identity.** Wire answers (point and pipelined batch) equal the
  in-process oracle exactly, including ``inf``.
* **Backpressure.** A saturated ingress rejects with ``OVERLOADED``
  carrying the server's ``retry_after`` hint; accepted requests still
  answer byte-exactly; client and server accounting reconcile.
* **Zero-downtime rollover.** Publishing a new snapshot generation
  swaps the backend mid-traffic with no failed request, and responses
  attribute to the generation that actually answered them.
* **Reconnect.** A restarted server is transparently re-dialed (capped
  exponential backoff) for idempotent reads; updates are never
  auto-resent.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.api import build_oracle, open_oracle
from repro.core.serialization import SnapshotSpool
from repro.errors import (
    CapabilityError,
    GraphError,
    OverloadedError,
    ProtocolError,
    StaleGenerationError,
)
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.sampling import sample_vertex_pairs
from repro.serving.net import (
    AsyncNetClient,
    NetClient,
    NetServer,
    SnapshotRollover,
)
from repro.serving.net import wire
from repro.serving.net.wire import FrameDecoder, Op, Status


@pytest.fixture(scope="module")
def net_graph():
    return barabasi_albert_graph(300, 3, seed=5)


@pytest.fixture(scope="module")
def net_oracle(net_graph):
    return build_oracle(net_graph, "hl", num_landmarks=8)


@pytest.fixture(scope="module")
def net_pairs(net_graph):
    return sample_vertex_pairs(net_graph, 64, seed=2)


class _SlowBackend:
    """Query-protocol wrapper that sleeps first — saturates the ingress."""

    def __init__(self, oracle, delay_s: float) -> None:
        self.oracle = oracle
        self.delay_s = delay_s

    def query(self, s, t):
        time.sleep(self.delay_s)
        return self.oracle.query(s, t)

    def query_many(self, pairs):
        time.sleep(self.delay_s)
        return self.oracle.query_many(pairs)


def _non_edge(graph, start=0):
    u = start
    for v in range(graph.num_vertices - 1, 0, -1):
        if u != v and not graph.has_edge(u, v):
            return u, v
    raise AssertionError("graph is complete")


class TestQueries:
    def test_point_and_batch_byte_identity(self, net_oracle, net_pairs):
        truth = net_oracle.query_many(net_pairs)
        with NetServer(net_oracle).running_in_thread() as (host, port):
            with NetClient(host, port) as client:
                s, t = map(int, net_pairs[0])
                assert client.query(s, t) == truth[0]
                assert np.array_equal(client.query_many(net_pairs), truth)

    def test_pipelined_chunks_reassemble_in_order(self, net_oracle, net_pairs):
        truth = net_oracle.query_many(net_pairs)
        with NetServer(net_oracle).running_in_thread() as (host, port):
            with NetClient(host, port) as client:
                distances, gens = client.query_many(
                    net_pairs, batch_size=5, window=4, with_generations=True
                )
                assert np.array_equal(distances, truth)
                assert set(gens) == {1}

    def test_disconnected_pair_is_inf_over_the_wire(self):
        from repro.graphs.graph import Graph

        graph = Graph(4, [(0, 1), (2, 3)], name="disconnected")
        oracle = build_oracle(graph, "hl", num_landmarks=2)
        with NetServer(oracle).running_in_thread() as (host, port):
            with NetClient(host, port) as client:
                assert client.query(0, 2) == float("inf")
                out = client.query_many([(0, 2), (0, 1)])
                assert np.isinf(out[0]) and out[1] == 1.0

    def test_health_and_stats_verbs(self, net_oracle, net_pairs):
        with NetServer(net_oracle).running_in_thread() as (host, port):
            with NetClient(host, port) as client:
                client.query_many(net_pairs)
                health = client.health()
                assert health["ok"] and health["generation"] == 1
                stats = client.stats()
                assert stats["generation"] == 1
                assert stats["accepted"] >= 1
                assert len(stats["clients"]) == 1
                (peer_stats,) = stats["clients"].values()
                # The STATS request itself is still in flight when the
                # payload snapshots the counters.
                assert peer_stats["accepted"] == peer_stats["responses"] + 1

    def test_bad_vertex_maps_to_graph_error(self, net_oracle):
        with NetServer(net_oracle).running_in_thread() as (host, port):
            with NetClient(host, port) as client:
                with pytest.raises(GraphError, match="out of range"):
                    client.query(0, 10**9)
                # The connection survives a per-request error.
                assert client.query(0, 1) == net_oracle.query(0, 1)

    def test_stale_generation_rejected_not_answered(self, net_oracle):
        with NetServer(net_oracle).running_in_thread() as (host, port):
            with NetClient(host, port) as client:
                with pytest.raises(StaleGenerationError) as info:
                    client.query(0, 1, min_generation=99)
                assert info.value.generation == 1  # the serving generation
                assert client.query(0, 1, min_generation=1) == pytest.approx(
                    net_oracle.query(0, 1)
                )

    def test_update_on_static_backend_is_unsupported(self, net_oracle):
        with NetServer(net_oracle).running_in_thread() as (host, port):
            with NetClient(host, port) as client:
                with pytest.raises(CapabilityError, match="DYNAMIC"):
                    client.insert_edge(0, 299)


class TestWireUpdates:
    def test_insert_delete_round_trip_with_generation_bumps(self, net_graph):
        dyn = build_oracle(net_graph, "hl", num_landmarks=8, dynamic=True)
        u, v = _non_edge(net_graph)
        with NetServer(dyn).running_in_thread() as (host, port):
            with NetClient(host, port) as client:
                before = client.query(u, v)
                assert before > 1.0
                client.insert_edge(u, v)
                assert client.generation == 2  # updates bump the generation
                assert client.query(u, v) == 1.0
                client.delete_edge(u, v)
                assert client.query(u, v) == before
                assert client.health()["generation"] == 3

    def test_read_your_writes_with_min_generation(self, net_graph):
        dyn = build_oracle(net_graph, "hl", num_landmarks=8, dynamic=True)
        u, v = _non_edge(net_graph)
        with NetServer(dyn).running_in_thread() as (host, port):
            with NetClient(host, port) as client:
                client.insert_edge(u, v)
                observed = client.generation
                # A second client insisting on that generation gets it.
                with NetClient(host, port) as other:
                    assert (
                        other.query(u, v, min_generation=observed) == 1.0
                    )


class TestOverload:
    """Satellite: saturate the ingress and reconcile the accounting."""

    def test_rejects_carry_retry_after_and_accepted_stay_exact(
        self, net_oracle, net_pairs
    ):
        server = NetServer(
            _SlowBackend(net_oracle, delay_s=0.3),
            max_queue=1,
            retry_after_s=0.07,
            worker_threads=1,
        )
        truth = net_oracle.query_many(net_pairs[:4])
        payload = wire.encode_pairs(net_pairs[:4])
        total = 6
        with server.running_in_thread() as (host, port):
            with socket.create_connection((host, port)) as sock:
                # Blast frames without reading: only one fits the queue.
                for request_id in range(1, total + 1):
                    sock.sendall(
                        wire.encode_frame(Op.BATCH, request_id, 0, payload)
                    )
                decoder = FrameDecoder()
                frames = []
                while len(frames) < total:
                    data = sock.recv(65536)
                    assert data, "server closed mid-conversation"
                    frames.extend(decoder.feed(data))
            rejected = [f for f in frames if f.kind == Status.OVERLOADED]
            accepted = [f for f in frames if f.kind == Status.OK]
            assert len(accepted) >= 1
            assert len(rejected) == total - len(accepted)
            for frame in rejected:
                retry_after, message = wire.decode_error(frame.payload)
                assert retry_after == pytest.approx(0.07)
                assert "ingress full" in message
            for frame in accepted:
                assert np.array_equal(
                    wire.decode_distances(frame.payload), truth
                )
            stats = server.stats()
            assert stats["accepted"] == len(accepted)
            assert stats["rejected"] == len(rejected)
            assert stats["queued"] == 0 and stats["inflight_bytes"] == 0

    def test_client_waits_out_overload_and_counters_reconcile(
        self, net_oracle, net_pairs
    ):
        server = NetServer(
            _SlowBackend(net_oracle, delay_s=0.05),
            max_queue=1,
            retry_after_s=0.02,
            worker_threads=1,
        )
        truth = net_oracle.query_many(net_pairs)
        with server.running_in_thread() as (host, port):
            clients = [NetClient(host, port) for _ in range(3)]
            outputs = [None] * len(clients)
            errors = []

            def run(i):
                try:
                    outputs[i] = clients[i].query_many(
                        net_pairs, batch_size=16, window=4
                    )
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(target=run, args=(i,))
                for i in range(len(clients))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            for out in outputs:
                assert np.array_equal(out, truth)
            stats = server.stats()
            # The cooperative retries were rejections, not failures...
            assert stats["rejected"] >= 1
            assert sum(c.overload_retries for c in clients) == stats["rejected"]
            # ...and every frame any client sent is in the ledger.
            assert sum(c.sent for c in clients) == (
                stats["accepted"] + stats["rejected"]
            )
            ledger = stats["clients"]
            assert sum(p["accepted"] for p in ledger.values()) == stats["accepted"]
            assert sum(p["rejected"] for p in ledger.values()) == stats["rejected"]
            for client in clients:
                client.close()

    def test_overload_surfaces_after_retry_budget(self, net_oracle, net_pairs):
        server = NetServer(
            _SlowBackend(net_oracle, delay_s=0.5),
            max_queue=1,
            retry_after_s=0.01,
            worker_threads=1,
        )
        with server.running_in_thread() as (host, port):
            blocker = NetClient(host, port)
            # Occupy the single queue slot with a slow batch...
            blocker_thread = threading.Thread(
                target=lambda: blocker.query_many(net_pairs[:4])
            )
            blocker_thread.start()
            time.sleep(0.1)
            # ...so an impatient client exhausts its retry budget.
            with NetClient(host, port, max_overload_retries=2) as client:
                with pytest.raises(OverloadedError) as info:
                    client.query(0, 1)
                assert info.value.retry_after == pytest.approx(0.01)
                assert client.overload_retries == 3  # budget + the last straw
            blocker_thread.join()
            blocker.close()


class TestProtocolViolations:
    def test_garbage_gets_error_frame_then_disconnect(self, net_oracle):
        with NetServer(net_oracle).running_in_thread() as (host, port):
            with socket.create_connection((host, port)) as sock:
                sock.sendall(b"\x10\x00\x00\x00GARBAGEGARBAGE!!")
                decoder = FrameDecoder()
                frames = []
                while True:
                    data = sock.recv(65536)
                    if not data:
                        break  # server hung up, as specified
                    frames.extend(decoder.feed(data))
            assert len(frames) == 1
            assert frames[0].kind == Status.PROTOCOL_ERROR
            assert frames[0].request_id == 0  # unattributable

    def test_response_status_in_request_direction_keeps_connection(
        self, net_oracle
    ):
        with NetServer(net_oracle).running_in_thread() as (host, port):
            with socket.create_connection((host, port)) as sock:
                sock.sendall(wire.encode_frame(Status.OK, 7, 0, b""))
                sock.sendall(
                    wire.encode_frame(
                        Op.QUERY, 8, 0, wire.encode_pair(0, 1)
                    )
                )
                decoder = FrameDecoder()
                frames = []
                while len(frames) < 2:
                    data = sock.recv(65536)
                    assert data
                    frames.extend(decoder.feed(data))
            by_id = {f.request_id: f for f in frames}
            assert by_id[7].kind == Status.PROTOCOL_ERROR
            assert by_id[8].kind == Status.OK  # stream still aligned

    def test_client_rejects_oversized_frames(self, net_oracle):
        with NetServer(net_oracle).running_in_thread() as (host, port):
            client = NetClient(host, port, max_frame_bytes=128)
            with pytest.raises(ProtocolError, match="exceeds"):
                client.query_many(np.tile([[0, 1]], (64, 1)))
            client.close()


class TestRollover:
    def _publish_generations(self, tmp_path, graph):
        """gen-0 from a static build, gen-1 after one edge insert."""
        base = build_oracle(graph, "hl", num_landmarks=8)
        spool = SnapshotSpool(tmp_path / "spool")
        gen0 = spool.publish(base, graph=True)
        mirror = open_oracle(graph, index=gen0, dynamic=True)
        return base, spool, gen0, mirror

    def test_swap_is_invisible_except_for_the_generation(
        self, tmp_path, net_graph, net_pairs
    ):
        base, spool, gen0, mirror = self._publish_generations(
            tmp_path, net_graph
        )
        truth_gen1 = base.query_many(net_pairs)
        server = NetServer(
            open_oracle(net_graph, index=gen0, mmap=True),
            rollover=SnapshotRollover(
                spool.directory, graph=net_graph, poll_s=0.02
            ),
            snapshot=gen0,
            owns_backend=True,
        )
        with server.running_in_thread() as (host, port):
            with NetClient(host, port) as client:
                out, gens = client.query_many(
                    net_pairs, with_generations=True
                )
                assert np.array_equal(out, truth_gen1)
                assert set(gens) == {1}

                u, v = _non_edge(net_graph)
                mirror.insert_edge(u, v)
                truth_gen2 = mirror.query_many(net_pairs)
                spool.publish(mirror, graph=True)
                deadline = time.monotonic() + 10
                while client.health()["generation"] < 2:
                    assert time.monotonic() < deadline, "rollover never landed"
                    time.sleep(0.02)

                out, gens = client.query_many(
                    net_pairs, with_generations=True
                )
                assert np.array_equal(out, truth_gen2)
                assert set(gens) == {2}
                # The sidecar carried the updated graph: the new edge
                # answers 1.0 without this server ever seeing an update.
                assert client.query(u, v) == 1.0
                stats = client.stats()
                assert stats["rollovers"] == 1
                assert stats["rollover_errors"] == 0
                assert stats["errors"] == 0
        spool.close(force=True)

    def test_queries_never_fail_across_continuous_swaps(
        self, tmp_path, net_graph, net_pairs
    ):
        """Hammer queries while three generations publish underneath."""
        base, spool, gen0, mirror = self._publish_generations(
            tmp_path, net_graph
        )
        expected = {1: base.query_many(net_pairs)}
        server = NetServer(
            open_oracle(net_graph, index=gen0, mmap=True),
            rollover=SnapshotRollover(
                spool.directory, graph=net_graph, poll_s=0.02
            ),
            snapshot=gen0,
            owns_backend=True,
        )
        failures, records = [], []
        stop = threading.Event()

        def hammer():
            with NetClient(server.host, server.port) as client:
                while not stop.is_set():
                    try:
                        out, gens = client.query_many(
                            net_pairs, batch_size=16, with_generations=True
                        )
                        records.append((out, gens))
                    except BaseException as exc:  # noqa: BLE001
                        failures.append(exc)
                        return

        with server.running_in_thread() as (host, port):
            threads = [threading.Thread(target=hammer) for _ in range(2)]
            for t in threads:
                t.start()
            probe = NetClient(host, port)
            start = 0
            for target in (2, 3, 4):
                u, v = _non_edge(net_graph, start)
                start = u + 1
                mirror.insert_edge(u, v)
                expected[target] = mirror.query_many(net_pairs)
                spool.publish(mirror, graph=True)
                deadline = time.monotonic() + 10
                while probe.health()["generation"] < target:
                    assert time.monotonic() < deadline
                    time.sleep(0.02)
            probe.close()
            stop.set()
            for t in threads:
                t.join()

        assert not failures
        seen = set()
        for out, gens in records:
            for g in np.unique(gens):
                seen.add(int(g))
                mask = gens == g
                assert np.array_equal(out[mask], expected[int(g)][mask])
        assert {1, 4} <= seen  # load spanned first and final generations
        spool.close(force=True)

    def test_sharded_backend_rollover_respawns_workers(
        self, tmp_path, net_graph, net_pairs
    ):
        base, spool, gen0, mirror = self._publish_generations(
            tmp_path, net_graph
        )
        rollover = SnapshotRollover(
            spool.directory, graph=net_graph, poll_s=0.05, shards=2
        )
        server = NetServer(
            rollover.load(gen0),
            rollover=rollover,
            snapshot=gen0,
            owns_backend=True,
        )
        with server.running_in_thread() as (host, port):
            with NetClient(host, port) as client:
                assert np.array_equal(
                    client.query_many(net_pairs), base.query_many(net_pairs)
                )
                u, v = _non_edge(net_graph)
                mirror.insert_edge(u, v)
                spool.publish(mirror, graph=True)
                deadline = time.monotonic() + 30
                while client.health()["generation"] < 2:
                    assert time.monotonic() < deadline
                    time.sleep(0.05)
                assert np.array_equal(
                    client.query_many(net_pairs), mirror.query_many(net_pairs)
                )
                assert server.backend is not None
                assert server.stats()["backend"]["shards"] == 2
        spool.close(force=True)


class TestReconnect:
    def test_reads_survive_a_server_restart(self, net_oracle, net_pairs):
        truth = net_oracle.query_many(net_pairs)
        first = NetServer(net_oracle)
        host, port = first.serve_in_thread()
        client = NetClient(
            host, port, backoff_base=0.02, connect_attempts=8
        )
        assert np.array_equal(client.query_many(net_pairs), truth)
        first.shutdown()

        second = NetServer(net_oracle, host=host, port=port)
        deadline = time.monotonic() + 10
        while True:
            try:
                second.serve_in_thread()
                break
            except OSError:
                assert time.monotonic() < deadline
                time.sleep(0.05)
        try:
            assert np.array_equal(client.query_many(net_pairs), truth)
            assert client.reconnects >= 1
        finally:
            client.close()
            second.shutdown()

    def test_updates_are_never_auto_resent(self, net_graph):
        dyn = build_oracle(net_graph, "hl", num_landmarks=8, dynamic=True)
        server = NetServer(dyn)
        host, port = server.serve_in_thread()
        client = NetClient(host, port, connect_attempts=1)
        client.connect()
        server.shutdown()
        u, v = _non_edge(net_graph)
        with pytest.raises((ConnectionError, OSError)):
            client.insert_edge(u, v)
        client.close()

    def test_backoff_delays_are_capped_exponentials(self):
        client = NetClient(
            "127.0.0.1", 1, connect_attempts=6,
            backoff_base=0.1, backoff_cap=0.5,
        )
        assert client._backoff_delays() == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_connect_gives_up_after_its_attempts(self):
        # A port from the dynamic range with (almost surely) no listener.
        client = NetClient(
            "127.0.0.1", 1, connect_attempts=2, backoff_base=0.01
        )
        with pytest.raises(OSError):
            client.connect()


class TestAsyncClient:
    def test_async_surface_matches_sync(self, net_oracle, net_pairs):
        import asyncio

        truth = net_oracle.query_many(net_pairs)
        with NetServer(net_oracle).running_in_thread() as (host, port):

            async def scenario():
                async with AsyncNetClient(host, port) as client:
                    s, t = map(int, net_pairs[0])
                    point = await client.query(s, t)
                    bulk = await client.query_many(net_pairs, batch_size=16)
                    health = await client.health()
                    stats = await client.stats()
                    concurrent = await asyncio.gather(
                        *(
                            client.query(int(a), int(b))
                            for a, b in net_pairs[:8]
                        )
                    )
                    return point, bulk, health, stats, concurrent

            point, bulk, health, stats, concurrent = asyncio.run(scenario())
        assert point == truth[0]
        assert np.array_equal(bulk, truth)
        assert health["ok"] and stats["generation"] == 1
        assert np.array_equal(np.array(concurrent), truth[:8])

    def test_async_errors_are_typed(self, net_oracle):
        import asyncio

        with NetServer(net_oracle).running_in_thread() as (host, port):

            async def scenario():
                async with AsyncNetClient(host, port) as client:
                    with pytest.raises(GraphError):
                        await client.query(0, 10**9)
                    with pytest.raises(StaleGenerationError):
                        await client.query(0, 1, min_generation=42)
                    with pytest.raises(CapabilityError):
                        await client.insert_edge(0, 1)

            asyncio.run(scenario())


class TestServerLifecycle:
    def test_bind_conflict_surfaces_in_the_caller(self, net_oracle):
        first = NetServer(net_oracle)
        host, port = first.serve_in_thread()
        try:
            second = NetServer(net_oracle, host=host, port=port)
            with pytest.raises(OSError):
                second.serve_in_thread()
        finally:
            first.shutdown()

    def test_constructor_validation(self, net_oracle):
        with pytest.raises(ValueError, match="max_queue"):
            NetServer(net_oracle, max_queue=0)
        with pytest.raises(ValueError, match="generation"):
            NetServer(net_oracle, generation=0)
        with pytest.raises(ValueError, match="worker_threads"):
            NetServer(net_oracle, worker_threads=0)
        with pytest.raises(ValueError, match="shards"):
            SnapshotRollover(".", shards=1)

    def test_shutdown_is_idempotent(self, net_oracle):
        server = NetServer(net_oracle)
        server.serve_in_thread()
        server.shutdown()
        server.shutdown()  # no-op, no error
