"""Unit tests for the sans-io wire protocol (:mod:`repro.serving.net.wire`).

Everything here runs without a socket: frame round trips through the
incremental decoder (including pathological chunking), every payload
codec against its inverse, corrupt-input rejection, and the
bidirectional status-code <-> typed-exception mapping the remote error
contract rests on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    CapabilityError,
    GraphError,
    NotBuiltError,
    OverloadedError,
    ProtocolError,
    ReproError,
    ServiceClosedError,
    StaleGenerationError,
    VertexError,
)
from repro.serving.net import wire
from repro.serving.net.wire import Frame, FrameDecoder, Op, Status


class TestFraming:
    def test_single_frame_round_trip(self):
        data = wire.encode_frame(Op.QUERY, 7, 3, wire.encode_pair(1, 2))
        frames = FrameDecoder().feed(data)
        assert frames == [Frame(Op.QUERY, 7, 3, wire.encode_pair(1, 2))]

    def test_multiple_frames_in_one_chunk(self):
        data = b"".join(
            wire.encode_frame(Op.HEALTH, i, 0) for i in range(1, 6)
        )
        frames = FrameDecoder().feed(data)
        assert [f.request_id for f in frames] == [1, 2, 3, 4, 5]

    def test_byte_at_a_time_reassembly(self):
        """TCP respects no frame boundaries; one byte per feed must work."""
        payload = wire.encode_pairs([(1, 2), (3, 4)])
        data = wire.encode_frame(Op.BATCH, 9, 5, payload)
        decoder = FrameDecoder()
        collected = []
        for offset in range(len(data)):
            collected.extend(decoder.feed(data[offset : offset + 1]))
        assert collected == [Frame(Op.BATCH, 9, 5, payload)]

    def test_split_across_chunks_with_trailing_partial(self):
        first = wire.encode_frame(Op.QUERY, 1, 0, wire.encode_pair(0, 1))
        second = wire.encode_frame(Op.QUERY, 2, 0, wire.encode_pair(2, 3))
        decoder = FrameDecoder()
        assert decoder.feed(first + second[:5]) == [
            Frame(Op.QUERY, 1, 0, wire.encode_pair(0, 1))
        ]
        assert decoder.feed(second[5:]) == [
            Frame(Op.QUERY, 2, 0, wire.encode_pair(2, 3))
        ]

    def test_max_ids_and_generation_width(self):
        """request_id is a u32 and generation a u64 — full range survives."""
        data = wire.encode_frame(Status.OK, 0xFFFFFFFF, 2**63, b"")
        (frame,) = FrameDecoder().feed(data)
        assert frame.request_id == 0xFFFFFFFF
        assert frame.generation == 2**63

    def test_bad_magic_rejected(self):
        data = bytearray(wire.encode_frame(Op.QUERY, 1, 0, b"\0" * 16))
        data[4] ^= 0xFF  # corrupt the magic inside the body
        with pytest.raises(ProtocolError, match="magic"):
            FrameDecoder().feed(bytes(data))

    def test_unsupported_version_rejected(self):
        data = bytearray(wire.encode_frame(Op.QUERY, 1, 0, b"\0" * 16))
        data[6] = 99  # the version byte follows the u16 magic
        with pytest.raises(ProtocolError, match="version 99"):
            FrameDecoder().feed(bytes(data))

    def test_unknown_kind_rejected(self):
        data = bytearray(wire.encode_frame(Op.QUERY, 1, 0, b""))
        data[7] = 200  # neither an opcode nor a status
        with pytest.raises(ProtocolError, match="kind 200"):
            FrameDecoder().feed(bytes(data))

    def test_oversized_frame_rejected_before_buffering(self):
        decoder = FrameDecoder(max_frame_bytes=64)
        huge = wire.encode_frame(Op.BATCH, 1, 0, b"\0" * 128)
        with pytest.raises(ProtocolError, match="exceeds"):
            decoder.feed(huge)

    def test_short_body_rejected(self):
        import struct

        with pytest.raises(ProtocolError, match="shorter than"):
            FrameDecoder().feed(struct.pack("<I", 3) + b"abc")


class TestPayloadCodecs:
    def test_pair_round_trip(self):
        assert wire.decode_pair(wire.encode_pair(-5, 2**40)) == (-5, 2**40)

    def test_pair_wrong_size_rejected(self):
        with pytest.raises(ProtocolError, match="pair payload"):
            wire.decode_pair(b"\0" * 7)

    def test_pairs_round_trip_and_dtype(self):
        pairs = np.array([[0, 1], [7, 3], [2**33, 5]], dtype=np.int64)
        out = wire.decode_pairs(wire.encode_pairs(pairs))
        assert out.dtype == np.int64
        assert np.array_equal(out, pairs)

    def test_pairs_empty(self):
        out = wire.decode_pairs(wire.encode_pairs(np.empty((0, 2), np.int64)))
        assert out.shape == (0, 2)

    def test_pairs_bad_shape_rejected(self):
        with pytest.raises(ProtocolError, match="shape"):
            wire.encode_pairs(np.arange(6).reshape(2, 3))

    def test_pairs_length_mismatch_rejected(self):
        payload = wire.encode_pairs([(1, 2)])
        with pytest.raises(ProtocolError, match="advertises"):
            wire.decode_pairs(payload[:-1])

    def test_distances_round_trip_including_inf(self):
        values = np.array([0.0, 3.0, np.inf, 7.5])
        out = wire.decode_distances(wire.encode_distances(values))
        assert np.array_equal(out, values)  # inf == inf holds elementwise

    def test_distances_length_mismatch_rejected(self):
        payload = wire.encode_distances([1.0, 2.0])
        with pytest.raises(ProtocolError, match="advertises"):
            wire.decode_distances(payload + b"\0")

    def test_scalar_codecs(self):
        assert wire.decode_f64(wire.encode_f64(2.5)) == 2.5
        assert np.isinf(wire.decode_f64(wire.encode_f64(float("inf"))))
        assert wire.decode_u64(wire.encode_u64(2**50)) == 2**50
        with pytest.raises(ProtocolError):
            wire.decode_f64(b"\0" * 4)
        with pytest.raises(ProtocolError):
            wire.decode_u64(b"\0" * 4)

    def test_error_payload_round_trip(self):
        retry, message = wire.decode_error(wire.encode_error("boom", 0.25))
        assert retry == 0.25
        assert message == "boom"

    def test_error_payload_tolerates_bad_utf8(self):
        payload = wire.encode_error("ok")[:8] + b"\xff\xfe"
        retry, message = wire.decode_error(payload)
        assert retry == 0.0 and message  # replaced, not raised


class TestStatusMapping:
    @pytest.mark.parametrize(
        ("exc", "status"),
        [
            (ProtocolError("x"), Status.PROTOCOL_ERROR),
            (OverloadedError("x"), Status.OVERLOADED),
            (StaleGenerationError("x"), Status.STALE_GENERATION),
            (VertexError(5, 3), Status.BAD_REQUEST),
            (GraphError("x"), Status.BAD_REQUEST),
            (ValueError("x"), Status.BAD_REQUEST),
            (CapabilityError("x"), Status.UNSUPPORTED),
            (NotImplementedError("x"), Status.UNSUPPORTED),
            (NotBuiltError("x"), Status.UNSUPPORTED),
            (ServiceClosedError("x"), Status.SHUTTING_DOWN),
            (RuntimeError("x"), Status.INTERNAL),
        ],
    )
    def test_status_for_error(self, exc, status):
        assert wire.status_for_error(exc)[0] == status

    def test_overload_hint_travels_with_the_status(self):
        status, retry = wire.status_for_error(OverloadedError("x", 0.75))
        assert (status, retry) == (Status.OVERLOADED, 0.75)

    @pytest.mark.parametrize(
        ("status", "family"),
        [
            (Status.PROTOCOL_ERROR, ProtocolError),
            (Status.OVERLOADED, OverloadedError),
            (Status.STALE_GENERATION, StaleGenerationError),
            (Status.BAD_REQUEST, GraphError),
            (Status.UNSUPPORTED, CapabilityError),
            (Status.SHUTTING_DOWN, ServiceClosedError),
            (Status.INTERNAL, ReproError),
        ],
    )
    def test_error_for_status(self, status, family):
        exc = wire.error_for_status(status, "remote message")
        assert isinstance(exc, family)
        assert "remote message" in str(exc)

    def test_mapping_is_bidirectional(self):
        """server-side exception -> status -> client-side exception lands
        in the same family (the remote-error contract)."""
        for exc in (
            OverloadedError("x", 0.1),
            StaleGenerationError("x", generation=4),
            VertexError(5, 3),
            CapabilityError("x"),
            ServiceClosedError("x"),
        ):
            status, retry = wire.status_for_error(exc)
            rebuilt = wire.error_for_status(status, str(exc), retry)
            assert wire.status_for_error(rebuilt)[0] == status

    def test_rebuilt_overload_carries_retry_after(self):
        status, retry = wire.status_for_error(OverloadedError("x", 0.3))
        rebuilt = wire.error_for_status(status, "x", retry)
        assert rebuilt.retry_after == 0.3

    def test_rebuilt_stale_generation_carries_generation(self):
        exc = wire.error_for_status(
            Status.STALE_GENERATION, "x", generation=9
        )
        assert exc.generation == 9


class TestRaiseForFrame:
    def test_ok_frame_passes_through(self):
        frame = Frame(Status.OK, 1, 2, b"payload")
        assert wire.raise_for_frame(frame) is frame

    def test_error_frame_raises_typed(self):
        frame = Frame(
            Status.OVERLOADED, 1, 2, wire.encode_error("full", 0.5)
        )
        with pytest.raises(OverloadedError) as info:
            wire.raise_for_frame(frame)
        assert info.value.retry_after == 0.5

    def test_request_frame_rejected(self):
        with pytest.raises(ProtocolError, match="request opcode"):
            wire.raise_for_frame(Frame(Op.QUERY, 1, 0, b""))

    def test_opcode_and_status_ranges_disjoint(self):
        assert not (Op.ALL & Status.ALL)
