"""Tests for the theorem-verification helpers themselves."""

import numpy as np

from repro.core.construction import build_highway_cover_labelling
from repro.core.highway import Highway
from repro.core.labels import LabelAccumulator
from repro.core.verification import (
    is_highway_cover,
    is_hwc_minimal,
    labelling_entry_set,
    reference_minimal_entries,
)
from repro.datasets.example_graph import paper_example_graph
from repro.graphs.generators import path_graph


class TestReferenceOracle:
    def test_example_graph_entries(self):
        """The brute-force oracle reproduces Figure 2(c) independently."""
        graph = paper_example_graph()
        highway = Highway([1, 5, 9])
        required = reference_minimal_entries(graph, highway)
        assert len(required) == 13
        # Spot-check: vertex 7 covered by 5 (index 1) and 9 (index 2).
        assert (1, 7) in required
        assert (2, 7) in required
        assert (0, 7) not in required

    def test_path_with_middle_landmark_blocks_far_side(self):
        # 0-1-2-3-4 with landmarks 1 and 3: vertex 4 must not carry an
        # entry for landmark 1 (3 is on every shortest path).
        graph = path_graph(5)
        highway = Highway([1, 3])
        required = reference_minimal_entries(graph, highway)
        assert (1, 4) in required  # landmark 3 covers 4
        assert (0, 4) not in required  # landmark 1 pruned by 3
        assert (0, 0) in required
        assert (0, 2) in required and (1, 2) in required


class TestDetectors:
    def test_detects_missing_entry(self):
        """Dropping an entry breaks the highway-cover property check."""
        graph = paper_example_graph()
        labelling, highway = build_highway_cover_labelling(graph, [1, 5, 9])
        entries = labelling_entry_set(labelling)
        # Rebuild a labelling with one entry removed.
        removed = sorted(entries)[0]
        acc = LabelAccumulator(graph.num_vertices, 3)
        per_landmark = {0: [], 1: [], 2: []}
        for v in range(graph.num_vertices):
            for r, d in labelling.label(v).entries():
                if (r, v) != removed:
                    per_landmark[r].append((v, d))
        for r, pairs in per_landmark.items():
            if pairs:
                vs, ds = zip(*pairs)
            else:
                vs, ds = (), ()
            acc.add_landmark_result(r, np.asarray(vs, dtype=np.int64), np.asarray(ds, dtype=np.int32))
        broken = acc.freeze()
        assert not is_highway_cover(graph, broken, highway)
        assert not is_hwc_minimal(graph, broken, highway)

    def test_detects_redundant_entry(self):
        """Adding a redundant entry keeps the cover but breaks minimality."""
        graph = paper_example_graph()
        labelling, highway = build_highway_cover_labelling(graph, [1, 5, 9])
        acc = LabelAccumulator(graph.num_vertices, 3)
        per_landmark = {0: [], 1: [], 2: []}
        for v in range(graph.num_vertices):
            for r, d in labelling.label(v).entries():
                per_landmark[r].append((v, d))
        # Vertex 7 has no entry for landmark 1 (index 0); inject the true
        # distance d(1, 7) = 2 as a redundant entry.
        per_landmark[0].append((7, 2))
        for r, pairs in per_landmark.items():
            vs, ds = zip(*sorted(pairs))
            acc.add_landmark_result(r, np.asarray(vs, dtype=np.int64), np.asarray(ds, dtype=np.int32))
        padded = acc.freeze()
        assert is_highway_cover(graph, padded, highway)
        assert not is_hwc_minimal(graph, padded, highway)

    def test_algorithm_1_output_passes_both(self, ba_graph):
        from repro.landmarks.selection import select_landmarks

        landmarks = select_landmarks(ba_graph, 5)
        labelling, highway = build_highway_cover_labelling(ba_graph, landmarks)
        assert is_highway_cover(ba_graph, labelling, highway)
        assert is_hwc_minimal(ba_graph, labelling, highway)
