"""Tests for shortest-path reconstruction on top of the HL oracle."""

import numpy as np
import pytest

from repro.core.paths import shortest_path
from repro.core.query import HighwayCoverOracle
from repro.graphs.generators import grid_graph, path_graph, star_graph
from repro.graphs.graph import Graph
from repro.graphs.sampling import sample_vertex_pairs


def _is_valid_path(graph, path, s, t):
    if path[0] != s or path[-1] != t:
        return False
    for a, b in zip(path, path[1:]):
        if not graph.has_edge(a, b):
            return False
    return len(set(path)) == len(path)  # simple path


class TestPathReconstruction:
    def test_paths_realize_exact_distances(self, ba_graph):
        oracle = HighwayCoverOracle(num_landmarks=8).build(ba_graph)
        pairs = sample_vertex_pairs(ba_graph, 120, seed=9)
        for s, t in pairs:
            s, t = int(s), int(t)
            path = shortest_path(oracle, s, t)
            assert path is not None
            assert _is_valid_path(ba_graph, path, s, t)
            assert len(path) - 1 == oracle.query(s, t)

    def test_grid_paths(self):
        g = grid_graph(6, 6)
        oracle = HighwayCoverOracle(num_landmarks=4).build(g)
        for s, t in [(0, 35), (5, 30), (7, 28)]:
            path = shortest_path(oracle, s, t)
            assert _is_valid_path(g, path, s, t)
            assert len(path) - 1 == oracle.query(s, t)

    def test_landmark_endpoints(self, ba_graph):
        oracle = HighwayCoverOracle(num_landmarks=6).build(ba_graph)
        r = int(oracle.highway.landmarks[0])
        for t in [10, 100, 250]:
            path = shortest_path(oracle, r, t)
            assert _is_valid_path(ba_graph, path, r, t)
            assert len(path) - 1 == oracle.query(r, t)

    def test_same_vertex(self, ba_graph):
        oracle = HighwayCoverOracle(num_landmarks=4).build(ba_graph)
        assert shortest_path(oracle, 5, 5) == [5]

    def test_adjacent_vertices(self):
        g = path_graph(4)
        oracle = HighwayCoverOracle(num_landmarks=1).build(g)
        assert shortest_path(oracle, 1, 2) == [1, 2]

    def test_disconnected_returns_none(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        oracle = HighwayCoverOracle(num_landmarks=2).build(g)
        assert shortest_path(oracle, 0, 5) is None

    def test_star_through_landmark_centre(self):
        g = star_graph(12)
        oracle = HighwayCoverOracle(num_landmarks=1).build(g)  # centre
        path = shortest_path(oracle, 3, 9)
        assert path == [3, 0, 9]

    def test_paper_example_path(self, example_graph):
        oracle = HighwayCoverOracle(landmarks=[1, 5, 9]).build(example_graph)
        path = shortest_path(oracle, 2, 11)
        assert _is_valid_path(example_graph, path, 2, 11)
        assert len(path) - 1 == 3  # Example 4.3's exact distance
