"""Tests for the dataset surrogate registry."""

import pytest

from repro.datasets.registry import (
    DATASETS,
    dataset_names,
    load_all_datasets,
    load_dataset,
)
from repro.graphs.connectivity import is_connected


class TestRegistry:
    def test_twelve_datasets_in_table_1_order(self):
        names = dataset_names()
        assert len(names) == 12
        assert names[0] == "Skitter"
        assert names[-1] == "ClueWeb09"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_dataset("Facebook")

    def test_generation_deterministic(self):
        a = load_dataset("Skitter", scale=0.05)
        b = load_dataset("Skitter", scale=0.05)
        assert a == b

    def test_scale_changes_size(self):
        small = load_dataset("Flickr", scale=0.05)
        bigger = load_dataset("Flickr", scale=0.1)
        assert bigger.num_vertices > small.num_vertices

    def test_minimum_size_floor(self):
        tiny = load_dataset("Skitter", scale=1e-9)
        assert tiny.num_vertices >= 2  # floor of 64 raw vertices, then LCC


class TestSurrogateShape:
    @pytest.mark.parametrize("name", dataset_names())
    def test_connected_and_named(self, name):
        g = load_dataset(name, scale=0.03)
        assert g.name == name
        assert g.num_vertices > 0
        assert is_connected(g)

    def test_relative_size_ordering_preserved(self):
        """ClueWeb09 surrogate is the largest, as in Table 1."""
        graphs = dict((spec.name, g) for spec, g in load_all_datasets(scale=0.05))
        assert graphs["ClueWeb09"].num_vertices == max(
            g.num_vertices for g in graphs.values()
        )
        assert graphs["Skitter"].num_vertices <= graphs["uk2007"].num_vertices

    def test_hollywood_is_densest(self):
        graphs = dict((spec.name, g) for spec, g in load_all_datasets(scale=0.05))
        density = {
            name: g.num_edges / g.num_vertices for name, g in graphs.items()
        }
        assert density["Hollywood"] == max(density.values())

    def test_scale_free_degree_skew(self):
        g = load_dataset("Twitter", scale=0.1)
        degrees = g.degrees()
        assert degrees.max() > 5 * degrees.mean()
