"""Tests for the stacked construction engine (HL-C), driven by the
differential builder harness in ``tests/builder_harness.py``."""

import numpy as np
import pytest

from builder_harness import (
    BUILDER_VARIANTS,
    assert_builders_agree,
    harness_cases,
)
from repro.core.construction import build_highway_cover_labelling
from repro.core.construction_engine import (
    DEFAULT_CHUNK_SIZE,
    build_highway_cover_labelling_stacked,
    stacked_pruned_bfs,
)
from repro.core.query import HighwayCoverOracle
from repro.errors import ConstructionBudgetExceeded, LandmarkError, VertexError
from repro.graphs.generators import barabasi_albert_graph, path_graph
from repro.graphs.graph import Graph
from repro.graphs.sampling import sample_vertex_pairs
from repro.landmarks.selection import select_landmarks
from repro.search.bfs import UNREACHED, bfs_distances

CASES = list(harness_cases())


class TestDifferentialHarness:
    @pytest.mark.parametrize(
        "graph,landmarks", [c[1:] for c in CASES], ids=[c[0] for c in CASES]
    )
    def test_all_builders_agree(self, graph, landmarks):
        """Stacked, looped, and both HL-P builders are byte-identical."""
        assert_builders_agree(graph, landmarks)

    def test_variant_registry_covers_all_builders(self):
        assert {"looped", "stacked", "parallel-thread", "parallel-process"} <= set(
            BUILDER_VARIANTS
        )


class TestStackedEngine:
    def test_multi_word_chunk(self):
        """More than 64 in-flight landmarks spill into a second word."""
        g = barabasi_albert_graph(200, 3, seed=5)
        landmarks = select_landmarks(g, 70)
        looped_l, looped_h = build_highway_cover_labelling(
            g, landmarks, engine="looped"
        )
        stacked_l, stacked_h = build_highway_cover_labelling_stacked(
            g, landmarks, chunk_size=70
        )
        assert stacked_l == looped_l
        assert np.array_equal(stacked_h.matrix, looped_h.matrix)

    def test_chunk_size_never_changes_output(self, ba_graph):
        landmarks = select_landmarks(ba_graph, 9)
        reference, _ = build_highway_cover_labelling_stacked(ba_graph, landmarks)
        for chunk in (1, 2, 4, 9, 64, 200):
            labelling, _ = build_highway_cover_labelling_stacked(
                ba_graph, landmarks, chunk_size=chunk
            )
            assert labelling == reference

    def test_subset_roots_against_full_mask(self, ba_graph):
        """Dynamic repair's calling convention: roots ⊂ landmark set."""
        landmarks = np.asarray(select_landmarks(ba_graph, 8), dtype=np.int64)
        mask = np.zeros(ba_graph.num_vertices, dtype=bool)
        mask[landmarks] = True
        roots = landmarks[[1, 4, 6]]
        per_vertices, per_distances, rows = stacked_pruned_bfs(
            ba_graph, roots, mask, landmarks
        )
        from repro.core.construction import pruned_bfs_from_landmark

        for slot, r in enumerate(roots):
            vertices, distances, row = pruned_bfs_from_landmark(
                ba_graph, int(r), mask, landmarks
            )
            order = np.argsort(per_vertices[slot])
            ref_order = np.argsort(vertices)
            assert np.array_equal(per_vertices[slot][order], vertices[ref_order])
            assert np.array_equal(per_distances[slot][order], distances[ref_order])
            assert np.array_equal(rows[slot], row)

    def test_empty_roots(self, ba_graph):
        landmarks = np.asarray(select_landmarks(ba_graph, 4), dtype=np.int64)
        mask = np.zeros(ba_graph.num_vertices, dtype=bool)
        mask[landmarks] = True
        per_vertices, per_distances, rows = stacked_pruned_bfs(
            ba_graph, np.empty(0, dtype=np.int64), mask, landmarks
        )
        assert per_vertices == [] and per_distances == []
        assert rows.shape == (0, 4)

    def test_singleton_graph(self):
        labelling, highway = build_highway_cover_labelling_stacked(Graph(1, []), [0])
        assert labelling.size() == 0
        assert highway.distance(0, 0) == 0.0

    def test_all_vertices_landmarks(self):
        g = path_graph(5)
        labelling, highway = build_highway_cover_labelling_stacked(g, [0, 1, 2, 3, 4])
        assert labelling.size() == 0
        assert highway.distance(0, 4) == 4.0

    def test_no_landmarks_rejected(self, ba_graph):
        with pytest.raises(LandmarkError):
            build_highway_cover_labelling_stacked(ba_graph, [])

    def test_out_of_range_landmark_rejected(self, ba_graph):
        with pytest.raises(VertexError):
            build_highway_cover_labelling_stacked(ba_graph, [ba_graph.num_vertices])

    def test_bad_chunk_size_rejected(self, ba_graph):
        with pytest.raises(ValueError):
            build_highway_cover_labelling_stacked(ba_graph, [0], chunk_size=0)

    def test_budget_exceeded_raises(self, ba_graph):
        landmarks = select_landmarks(ba_graph, 10)
        with pytest.raises(ConstructionBudgetExceeded):
            build_highway_cover_labelling_stacked(ba_graph, landmarks, budget_s=1e-9)

    def test_default_chunk_is_word_sized(self):
        assert DEFAULT_CHUNK_SIZE == 64


class TestEngineDispatch:
    def test_unknown_engine_rejected(self, ba_graph):
        with pytest.raises(ValueError):
            build_highway_cover_labelling(ba_graph, [0], engine="quantum")

    def test_dispatch_routes_to_stacked(self, ba_graph):
        landmarks = select_landmarks(ba_graph, 6)
        via_dispatch, _ = build_highway_cover_labelling(
            ba_graph, landmarks, engine="stacked", chunk_size=2
        )
        direct, _ = build_highway_cover_labelling_stacked(
            ba_graph, landmarks, chunk_size=2
        )
        assert via_dispatch == direct

    def test_oracle_engine_parameter(self, ws_graph):
        stacked = HighwayCoverOracle(num_landmarks=6, engine="stacked").build(ws_graph)
        looped = HighwayCoverOracle(num_landmarks=6, engine="looped").build(ws_graph)
        assert stacked.labelling == looped.labelling
        assert np.array_equal(stacked.highway.matrix, looped.highway.matrix)


class TestQueriesOnStackedIndex:
    def test_queries_match_bfs(self, ws_graph):
        """End-to-end: an index built by the engine answers exactly."""
        oracle = HighwayCoverOracle(num_landmarks=8, chunk_size=3).build(ws_graph)
        pairs = sample_vertex_pairs(ws_graph, 80, seed=17)
        for s, t in pairs:
            truth = bfs_distances(ws_graph, int(s))[int(t)]
            expected = float(truth) if truth != UNREACHED else float("inf")
            assert oracle.query(int(s), int(t)) == expected
