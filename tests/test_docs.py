"""Documentation health checks, run as part of the tier-1 suite.

Three guarantees:

* every relative link and referenced repository path in ``README.md``
  and ``docs/*.md`` resolves (the same check CI's docs job runs via
  ``tools/check_links.py``);
* ``python -m pydoc repro.api`` renders cleanly — the public API
  surface stays introspectable;
* every public class/function in the audited public modules
  (``repro/api``, ``repro/serving``, ``core/labels``,
  ``core/serialization``) carries a docstring, so the audit cannot
  silently regress.
"""

from __future__ import annotations

import ast
import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

AUDITED_MODULES = [
    "src/repro/api/__init__.py",
    "src/repro/api/factory.py",
    "src/repro/api/protocol.py",
    "src/repro/serving/__init__.py",
    "src/repro/serving/cache.py",
    "src/repro/serving/executor.py",
    "src/repro/serving/service.py",
    "src/repro/serving/sharded.py",
    "src/repro/serving/net/__init__.py",
    "src/repro/serving/net/wire.py",
    "src/repro/serving/net/server.py",
    "src/repro/serving/net/client.py",
    "src/repro/serving/net/loadgen.py",
    "src/repro/core/labels.py",
    "src/repro/core/kernels/__init__.py",
    "src/repro/core/kernels/interface.py",
    "src/repro/core/kernels/loops.py",
    "src/repro/core/serialization.py",
    "src/repro/core/wal.py",
    "src/repro/core/fsck.py",
    "src/repro/core/ooc.py",
    "src/repro/graphs/disk_csr.py",
    "src/repro/datasets/ingest.py",
    "src/repro/utils/memory.py",
]

REQUIRED_DOCS = [
    "docs/architecture.md",
    "docs/paper_map.md",
    "docs/serving.md",
    "docs/networking.md",
    "docs/durability.md",
    "docs/kernels.md",
    "docs/ingest.md",
    "README.md",
]


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_links", REPO_ROOT / "tools" / "check_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestDocsTree:
    @pytest.mark.parametrize("relpath", REQUIRED_DOCS)
    def test_required_documents_exist(self, relpath):
        assert (REPO_ROOT / relpath).is_file()

    def test_readme_links_docs_tree(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for doc in ("docs/architecture.md", "docs/paper_map.md", "docs/serving.md"):
            assert doc in readme, f"README must link {doc}"

    def test_all_relative_links_resolve(self, capsys):
        checker = _load_checker()
        assert checker.main(REPO_ROOT) == 0, capsys.readouterr().err

    def test_checker_catches_broken_links(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "README.md").write_text(
            "[gone](docs/missing.md) and `src/nope/never.py`\n"
        )
        (tmp_path / "docs" / "x.md").write_text("[up](../README.md) fine\n")
        checker = _load_checker()
        assert checker.main(tmp_path) == 1


class TestPublicSurface:
    def test_pydoc_api_renders(self):
        result = subprocess.run(
            [sys.executable, "-m", "pydoc", "repro.api"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr
        for name in ("open_oracle", "build_oracle", "Capability", "DistanceOracle"):
            assert name in result.stdout

    @pytest.mark.parametrize("relpath", AUDITED_MODULES)
    def test_public_surface_is_docstringed(self, relpath):
        tree = ast.parse((REPO_ROOT / relpath).read_text(encoding="utf-8"))
        assert ast.get_docstring(tree), f"{relpath}: missing module docstring"
        missing = []
        for node in ast.walk(tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if node.name.startswith("_"):
                continue
            if not ast.get_docstring(node):
                missing.append(f"{node.name}:{node.lineno}")
        assert not missing, f"{relpath}: missing docstrings on {missing}"
