"""Conformance suite for the capability-based oracle API.

Every method registered in :mod:`repro.api.factory` is run through the
same gauntlet on scale-free, small-world, and disconnected graphs:
build, exact point queries against BFS ground truth, ``query_many``
against looped ``query``, and — capability by capability — the checks
that what an oracle *advertises* through ``capabilities()`` matches
what it *does*. The suite is what makes the protocol's contracts
(module docstring of :mod:`repro.api.protocol`) enforceable rather
than aspirational; a newly registered backend gets the whole gauntlet
for free.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.api import (
    Capability,
    DistanceOracle,
    available_methods,
    build_oracle,
    capabilities_of,
    make_oracle,
    open_oracle,
    resolve_method,
)
from repro.graphs.connectivity import largest_connected_component
from repro.graphs.generators import barabasi_albert_graph, watts_strogatz_graph
from repro.graphs.graph import Graph
from repro.search.bfs import bfs_distance

#: Fast constructor options per method (tests favour small indexes).
METHOD_OPTIONS = {
    "hl": dict(num_landmarks=8),
    "hl-p": dict(num_landmarks=8, workers=2),
    "hl8": dict(num_landmarks=8),
    "hl-dyn": dict(num_landmarks=8),
    "fd": dict(num_landmarks=6),
    "alt": dict(num_landmarks=6),
    "pll": {},
    "isl": {},
    "bfs": {},
    "bibfs": {},
    "dijkstra": {},
}

METHOD_NAMES = sorted(METHOD_OPTIONS)

#: Online methods: contractually zero-size indexes.
ZERO_INDEX_METHODS = ("bfs", "bibfs", "dijkstra")


def _registry_is_covered():
    return sorted(spec.name for spec in available_methods()) == METHOD_NAMES


def _disconnected_graph() -> Graph:
    """Two components: a 2-chorded cycle and a star, plus an isolate."""
    cycle = [(i, (i + 1) % 12) for i in range(12)] + [(0, 6), (3, 9)]
    star = [(12, 12 + i) for i in range(1, 7)]
    return Graph(20, cycle + star, name="disconnected")


@pytest.fixture(scope="module")
def conformance_graphs():
    ws, _ = largest_connected_component(watts_strogatz_graph(90, 4, 0.1, seed=6))
    return {
        "ba": barabasi_albert_graph(120, 3, seed=5),
        "ws": ws,
        "disconnected": _disconnected_graph(),
    }


def _sample_pairs(graph: Graph, count: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    pairs = rng.integers(0, graph.num_vertices, size=(count, 2))
    pairs[0] = (0, 0)  # always include a same-vertex pair
    pairs[1] = (0, graph.num_vertices - 1)  # spans components when split
    return pairs.astype(np.int64)


def test_method_list_matches_registry():
    """This suite covers exactly the registered methods — a new
    registration must add itself to METHOD_OPTIONS to get the gauntlet."""
    assert _registry_is_covered()


@pytest.mark.parametrize("method", METHOD_NAMES)
class TestConformance:
    def test_protocol_shape(self, method):
        oracle = make_oracle(method, **METHOD_OPTIONS[method])
        assert isinstance(oracle, DistanceOracle)
        assert isinstance(oracle.name, str) and oracle.name
        caps = oracle.capabilities()
        assert isinstance(caps, frozenset)
        assert caps == capabilities_of(oracle)
        assert all(isinstance(c, Capability) for c in caps)

    def test_spec_capabilities_match_instance(self, method):
        """The registry's declared contract equals what a
        default-configured instance actually advertises — the spec is
        load-bearing (open_oracle's snapshot gate), not display-only."""
        assert resolve_method(method).capabilities == capabilities_of(
            make_oracle(method)
        )

    def test_exact_queries_and_batch(self, method, conformance_graphs):
        for graph in conformance_graphs.values():
            oracle = build_oracle(graph, method, **METHOD_OPTIONS[method])
            pairs = _sample_pairs(graph, 25, seed=17)
            looped = np.array(
                [oracle.query(int(s), int(t)) for s, t in pairs], dtype=float
            )
            truth = np.array(
                [bfs_distance(graph, int(s), int(t)) for s, t in pairs]
            )
            assert np.array_equal(looped, truth), (method, graph.name)
            # Capability.BATCH contract: query_many == looped query.
            assert Capability.BATCH in oracle.capabilities()
            batched = np.asarray(oracle.query_many(pairs), dtype=float)
            assert np.array_equal(batched, looped), (method, graph.name)

    def test_size_accounting_is_total(self, method, conformance_graphs):
        """size_bytes / average_label_size never raise on a built oracle,
        and are contractually zero for the index-free methods."""
        oracle = make_oracle(method, **METHOD_OPTIONS[method])
        if method in ZERO_INDEX_METHODS:
            # Zero even before build: the zero *is* the answer.
            assert oracle.size_bytes() == 0
            assert oracle.average_label_size() == 0.0
        oracle.build(conformance_graphs["ba"])
        size = oracle.size_bytes()
        als = oracle.average_label_size()
        assert isinstance(size, int) and size >= 0
        assert als >= 0.0
        if method in ZERO_INDEX_METHODS:
            assert size == 0 and als == 0.0
        else:
            assert size > 0

    def test_dynamic_capability_matches_behaviour(self, method, conformance_graphs):
        graph = conformance_graphs["ba"]
        oracle = build_oracle(graph, method, **METHOD_OPTIONS[method])
        advertises = Capability.DYNAMIC in oracle.capabilities()
        has_both = hasattr(oracle, "insert_edge") and hasattr(oracle, "delete_edge")
        # Honesty: advertised iff both update directions exist (FD's
        # insert-only repair must not advertise).
        assert advertises == has_both
        if not advertises:
            return
        rng = np.random.default_rng(3)
        while True:
            u, v = (int(x) for x in rng.integers(0, graph.num_vertices, 2))
            if u != v and not graph.has_edge(u, v):
                break
        oracle.insert_edge(u, v)
        assert oracle.query(u, v) == 1.0
        pairs = _sample_pairs(oracle.graph, 20, seed=23)
        truth = [bfs_distance(oracle.graph, int(s), int(t)) for s, t in pairs]
        assert [oracle.query(int(s), int(t)) for s, t in pairs] == truth
        oracle.delete_edge(u, v)
        truth = [bfs_distance(oracle.graph, int(s), int(t)) for s, t in pairs]
        assert [oracle.query(int(s), int(t)) for s, t in pairs] == truth

    def test_snapshot_capability_round_trip(self, method, conformance_graphs, tmp_path):
        graph = conformance_graphs["ba"]
        oracle = build_oracle(graph, method, **METHOD_OPTIONS[method])
        if Capability.SNAPSHOT not in oracle.capabilities():
            # Non-snapshot methods must be rejected by the restore path.
            with pytest.raises((ValueError, AttributeError)):
                open_oracle(graph, index=tmp_path / "x.hl", method=method)
            return
        path = tmp_path / f"{method}.hl"
        written = oracle.save(path)
        assert written == path.stat().st_size > 0
        pairs = _sample_pairs(graph, 20, seed=29)
        for mmap in (False, True):
            restored = open_oracle(graph, index=path, mmap=mmap)
            assert np.array_equal(
                np.asarray(restored.query_many(pairs), dtype=float),
                np.asarray(oracle.query_many(pairs), dtype=float),
            )

    def test_paths_capability(self, method, conformance_graphs):
        graph = conformance_graphs["disconnected"]
        oracle = build_oracle(graph, method, **METHOD_OPTIONS[method])
        if Capability.PATHS not in oracle.capabilities():
            return
        for s, t in ((0, 6), (1, 4), (13, 14)):
            path = oracle.shortest_path(s, t)
            assert path is not None and path[0] == s and path[-1] == t
            assert len(path) - 1 == oracle.query(s, t)
        assert oracle.shortest_path(0, 13) is None  # cross-component


class TestFactories:
    def test_aliases_resolve_case_insensitively(self):
        for alias, canonical in (
            ("HL", "hl"),
            ("HL-P", "hl-p"),
            ("HL(8)", "hl8"),
            ("IS-L", "isl"),
            ("Bi-BFS", "bibfs"),
            ("dijkstra", "dijkstra"),
        ):
            assert resolve_method(alias).name == canonical

    def test_unknown_method_lists_options(self):
        with pytest.raises(KeyError, match="unknown method"):
            make_oracle("HHL")

    def test_dynamic_flag_routes_to_dynamic_oracle(self, conformance_graphs):
        from repro.core.dynamic import DynamicHighwayCoverOracle

        oracle = build_oracle(
            conformance_graphs["ba"], "hl", dynamic=True, num_landmarks=6
        )
        assert isinstance(oracle, DynamicHighwayCoverOracle)
        assert Capability.DYNAMIC in oracle.capabilities()

    def test_dynamic_flag_rejected_for_static_methods(self):
        with pytest.raises(ValueError, match="no dynamic variant"):
            make_oracle("pll", dynamic=True)

    def test_open_oracle_reads_edge_lists(self, tmp_path):
        edge_file = tmp_path / "g.txt"
        edge_file.write_text("0 1\n1 2\n2 3\n")
        oracle = open_oracle(edge_file, method="hl", num_landmarks=2)
        assert oracle.query(0, 3) == 3.0

    def test_open_oracle_rejects_mmap_without_index(self, conformance_graphs):
        with pytest.raises(ValueError, match="mmap"):
            open_oracle(conformance_graphs["ba"], mmap=True)

    def test_open_oracle_rejects_options_with_index(
        self, conformance_graphs, tmp_path
    ):
        graph = conformance_graphs["ba"]
        path = tmp_path / "i.hl"
        build_oracle(graph, "hl", num_landmarks=4).save(path)
        with pytest.raises(ValueError, match="ignored"):
            open_oracle(graph, index=path, num_landmarks=9)

    def test_open_oracle_promotes_snapshots_to_dynamic(
        self, conformance_graphs, tmp_path
    ):
        graph = conformance_graphs["ba"]
        path = tmp_path / "i.hl"
        build_oracle(graph, "hl", num_landmarks=6).save(path)
        oracle = open_oracle(graph, index=path, dynamic=True)
        assert Capability.DYNAMIC in oracle.capabilities()
        rng = np.random.default_rng(5)
        while True:
            u, v = (int(x) for x in rng.integers(0, graph.num_vertices, 2))
            if u != v and not graph.has_edge(u, v):
                break
        oracle.insert_edge(u, v)
        assert oracle.query(u, v) == 1.0

    def test_open_oracle_rejects_bad_source(self):
        with pytest.raises(TypeError, match="Graph or an edge-list path"):
            open_oracle(12345)

    def test_registry_specs_have_descriptions(self):
        for spec in available_methods():
            assert spec.description
            assert spec.capabilities  # every method at least batches


class TestDeprecationShim:
    def test_old_import_path_warns_and_aliases(self):
        import repro.baselines.interface as legacy

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shimmed = legacy.DistanceOracle
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        assert shimmed is DistanceOracle

    def test_unknown_attribute_still_raises(self):
        import repro.baselines.interface as legacy

        with pytest.raises(AttributeError):
            legacy.does_not_exist

    def test_baselines_package_reexport_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.baselines import DistanceOracle as via_package
        assert via_package is DistanceOracle
