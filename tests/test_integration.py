"""Integration tests: all methods agree with each other end-to-end.

These exercise the full stack (dataset surrogate -> landmark selection ->
construction -> query) and cross-check every method against every other,
which is stronger than checking each against BFS alone: a shared bug in
the BFS oracle would still show up as cross-method disagreement with
Dijkstra's independently coded control flow.
"""

import numpy as np
import pytest

from repro.baselines import (
    BiBFSOracle,
    DijkstraOracle,
    FullyDynamicOracle,
    ISLabelOracle,
    PrunedLandmarkLabelling,
)
from repro.core.query import HighwayCoverOracle
from repro.datasets.registry import load_dataset
from repro.graphs.sampling import sample_vertex_pairs


@pytest.fixture(scope="module")
def surrogate():
    return load_dataset("Skitter", scale=0.05)


@pytest.fixture(scope="module")
def all_oracles(surrogate):
    return {
        "HL": HighwayCoverOracle(num_landmarks=10).build(surrogate),
        "HL-P": HighwayCoverOracle(num_landmarks=10, parallel=True).build(surrogate),
        "HL(8)": HighwayCoverOracle(num_landmarks=10, codec="u8").build(surrogate),
        "FD": FullyDynamicOracle(num_landmarks=10).build(surrogate),
        "PLL": PrunedLandmarkLabelling(bp_roots=2).build(surrogate),
        "IS-L": ISLabelOracle(num_levels=4).build(surrogate),
        "Bi-BFS": BiBFSOracle().build(surrogate),
        "Dijkstra": DijkstraOracle().build(surrogate),
    }


class TestCrossMethodAgreement:
    def test_every_method_agrees_on_sampled_pairs(self, surrogate, all_oracles):
        pairs = sample_vertex_pairs(surrogate, 60, seed=17)
        for s, t in pairs:
            answers = {name: o.query(int(s), int(t)) for name, o in all_oracles.items()}
            assert len(set(answers.values())) == 1, answers

    def test_landmark_pairs_agree(self, surrogate, all_oracles):
        hl = all_oracles["HL"]
        landmarks = list(hl.highway.landmarks)[:4]
        for s in landmarks:
            for t in landmarks:
                answers = {
                    name: o.query(int(s), int(t)) for name, o in all_oracles.items()
                }
                assert len(set(answers.values())) == 1, answers


class TestIndexSizeOrdering:
    def test_paper_headline_ordering(self, all_oracles):
        """size(HL(8)) < size(HL) < size(FD) — Table 3's shape."""
        assert (
            all_oracles["HL(8)"].size_bytes()
            < all_oracles["HL"].size_bytes()
            < all_oracles["FD"].size_bytes()
        )

    def test_hl_als_below_fd(self, all_oracles):
        assert (
            all_oracles["HL"].average_label_size()
            < all_oracles["FD"].average_label_size()
        )


class TestCoverageOrdering:
    def test_fd_coverage_at_least_hl_minus_noise(self, surrogate, all_oracles):
        """Figure 9: FD's BP sub-hubs give it >= coverage vs plain HL."""
        pairs = sample_vertex_pairs(surrogate, 100, seed=23)
        hl, fd = all_oracles["HL"], all_oracles["FD"]
        hl_cov = sum(hl.is_covered(int(s), int(t)) for s, t in pairs)
        fd_cov = sum(fd.is_covered(int(s), int(t)) for s, t in pairs)
        assert fd_cov >= hl_cov


class TestDynamicConsistency:
    def test_fd_insertion_then_all_methods_rebuilt_agree(self, surrogate):
        fd = FullyDynamicOracle(num_landmarks=6).build(surrogate)
        u, v = 1, surrogate.num_vertices - 2
        if not surrogate.has_edge(u, v):
            fd.insert_edge(u, v)
        updated = fd.graph
        hl = HighwayCoverOracle(num_landmarks=6).build(updated)
        pairs = sample_vertex_pairs(updated, 40, seed=29)
        for s, t in pairs:
            assert fd.query(int(s), int(t)) == hl.query(int(s), int(t))
