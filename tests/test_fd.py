"""Tests for the FD baseline (landmark SPTs + BP + bounded search)."""

import pytest

from repro.baselines.fd import FullyDynamicOracle
from repro.errors import ConstructionBudgetExceeded, NotBuiltError
from repro.graphs.graph import Graph
from repro.graphs.sampling import sample_vertex_pairs
from repro.search.bfs import UNREACHED, bfs_distances


class TestFDExactness:
    @pytest.mark.parametrize("use_bp", [True, False])
    def test_matches_bfs(self, ba_graph, use_bp):
        fd = FullyDynamicOracle(num_landmarks=8, use_bit_parallel=use_bp).build(ba_graph)
        pairs = sample_vertex_pairs(ba_graph, 200, seed=1)
        for s, t in pairs:
            truth = bfs_distances(ba_graph, int(s))[int(t)]
            assert fd.query(int(s), int(t)) == float(truth)

    def test_landmark_endpoints(self, ws_graph):
        fd = FullyDynamicOracle(num_landmarks=5).build(ws_graph)
        assert fd.landmarks is not None
        r = fd.landmarks[0]
        truth = bfs_distances(ws_graph, r)
        for t in range(0, ws_graph.num_vertices, 9):
            assert fd.query(r, t) == float(truth[t])

    def test_same_vertex(self, ba_graph):
        fd = FullyDynamicOracle(num_landmarks=4).build(ba_graph)
        assert fd.query(7, 7) == 0.0

    def test_disconnected(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        fd = FullyDynamicOracle(num_landmarks=2).build(g)
        assert fd.query(0, 5) == float("inf")

    def test_unbuilt_raises(self):
        with pytest.raises(NotBuiltError):
            FullyDynamicOracle().query(0, 1)


class TestFDBounds:
    def test_upper_bound_admissible(self, ba_graph):
        fd = FullyDynamicOracle(num_landmarks=8).build(ba_graph)
        pairs = sample_vertex_pairs(ba_graph, 150, seed=2)
        for s, t in pairs:
            truth = bfs_distances(ba_graph, int(s))[int(t)]
            assert fd.upper_bound(int(s), int(t)) >= float(truth)

    def test_bp_tightens_bounds(self, ba_graph):
        """BP masks can only tighten the landmark bound (never loosen)."""
        with_bp = FullyDynamicOracle(num_landmarks=6, use_bit_parallel=True).build(
            ba_graph
        )
        without = FullyDynamicOracle(num_landmarks=6, use_bit_parallel=False).build(
            ba_graph
        )
        pairs = sample_vertex_pairs(ba_graph, 150, seed=3)
        for s, t in pairs:
            assert with_bp.upper_bound(int(s), int(t)) <= without.upper_bound(
                int(s), int(t)
            )

    def test_bp_coverage_at_least_plain(self, ba_graph):
        """Figure 9's mechanism: BP sub-hubs raise FD's pair coverage."""
        with_bp = FullyDynamicOracle(num_landmarks=6, use_bit_parallel=True).build(
            ba_graph
        )
        without = FullyDynamicOracle(num_landmarks=6, use_bit_parallel=False).build(
            ba_graph
        )
        pairs = sample_vertex_pairs(ba_graph, 150, seed=4)
        cov_bp = sum(with_bp.is_covered(int(s), int(t)) for s, t in pairs)
        cov_plain = sum(without.is_covered(int(s), int(t)) for s, t in pairs)
        assert cov_bp >= cov_plain


class TestFDReporting:
    def test_als_display(self, ws_graph):
        fd = FullyDynamicOracle(num_landmarks=5).build(ws_graph)
        assert fd.als_display().startswith("5+")
        assert fd.average_label_size() > 5

    def test_size_bytes(self, ws_graph):
        fd_bp = FullyDynamicOracle(num_landmarks=5, use_bit_parallel=True).build(ws_graph)
        fd_plain = FullyDynamicOracle(num_landmarks=5, use_bit_parallel=False).build(
            ws_graph
        )
        n = ws_graph.num_vertices
        assert fd_plain.size_bytes() == 5 * n * 5
        assert fd_bp.size_bytes() == 5 * n * 5 + 5 * n * 17

    def test_budget_dnf(self, ba_graph):
        with pytest.raises(ConstructionBudgetExceeded):
            FullyDynamicOracle(num_landmarks=10, budget_s=1e-9).build(ba_graph)


class TestFDDynamicUpdates:
    def test_insert_edge_keeps_queries_exact(self, ws_graph):
        fd = FullyDynamicOracle(num_landmarks=5).build(ws_graph)
        n = ws_graph.num_vertices
        # Insert a shortcut between two far-apart vertices.
        import numpy as np

        rng = np.random.default_rng(5)
        u, v = 0, n // 2
        if not ws_graph.has_edge(u, v):
            fd.insert_edge(u, v)
        new_graph = fd.graph
        pairs = rng.integers(0, n, size=(80, 2))
        for s, t in pairs:
            truth = bfs_distances(new_graph, int(s))[int(t)]
            expected = float(truth) if truth != UNREACHED else float("inf")
            assert fd.query(int(s), int(t)) == expected

    def test_insert_updates_spt_rows(self, ws_graph):
        fd = FullyDynamicOracle(num_landmarks=4, use_bit_parallel=False).build(ws_graph)
        assert fd.landmarks is not None and fd.spt is not None
        u, v = 0, ws_graph.num_vertices // 2
        if not ws_graph.has_edge(u, v):
            fd.insert_edge(u, v)
        for i, r in enumerate(fd.landmarks):
            truth = bfs_distances(fd.graph, r)
            import numpy as np

            assert np.array_equal(fd.spt[i], truth)
