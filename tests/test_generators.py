"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.connectivity import is_connected
from repro.graphs.generators import (
    barabasi_albert_graph,
    copying_model_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    powerlaw_configuration_graph,
    star_graph,
    watts_strogatz_graph,
)


class TestBarabasiAlbert:
    def test_size_and_density(self):
        g = barabasi_albert_graph(500, 3, seed=1)
        assert g.num_vertices == 500
        # Each vertex beyond the seed adds `attach` edges (some dedup).
        assert 3 * 480 <= g.num_edges <= 3 * 500 + 10

    def test_connected(self):
        assert is_connected(barabasi_albert_graph(200, 2, seed=2))

    def test_deterministic_per_seed(self):
        g1 = barabasi_albert_graph(100, 3, seed=7)
        g2 = barabasi_albert_graph(100, 3, seed=7)
        g3 = barabasi_albert_graph(100, 3, seed=8)
        assert g1 == g2
        assert g1 != g3

    def test_heavy_tail(self):
        g = barabasi_albert_graph(2000, 3, seed=3)
        degrees = g.degrees()
        # Hubs exist: max degree far above the mean.
        assert degrees.max() > 5 * degrees.mean()

    def test_invalid_parameters(self):
        with pytest.raises(GraphError):
            barabasi_albert_graph(5, 0)
        with pytest.raises(GraphError):
            barabasi_albert_graph(3, 3)


class TestErdosRenyi:
    def test_average_degree(self):
        g = erdos_renyi_graph(1000, 6.0, seed=4)
        assert 4.5 <= g.degrees().mean() <= 6.5

    def test_invalid(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(0, 2.0)


class TestWattsStrogatz:
    def test_no_rewire_is_ring_lattice(self):
        g = watts_strogatz_graph(20, 4, 0.0, seed=5)
        assert g.num_edges == 40
        assert all(d == 4 for d in g.degrees())

    def test_rewire_preserves_edge_budget_approximately(self):
        g = watts_strogatz_graph(200, 4, 0.3, seed=6)
        # Rewiring can only merge duplicates, never add.
        assert g.num_edges <= 400
        assert g.num_edges >= 360

    def test_invalid(self):
        with pytest.raises(GraphError):
            watts_strogatz_graph(10, 3, 0.1)
        with pytest.raises(GraphError):
            watts_strogatz_graph(10, 4, 1.5)


class TestCopyingModel:
    def test_connected_and_sized(self):
        g = copying_model_graph(300, 5, seed=7)
        assert g.num_vertices == 300
        assert is_connected(g)

    def test_hub_concentration(self):
        g = copying_model_graph(1000, 5, copy_prob=0.9, seed=8)
        degrees = g.degrees()
        # Copying concentrates in-links: extreme hubs emerge.
        assert degrees.max() > 10 * degrees.mean()

    def test_invalid(self):
        with pytest.raises(GraphError):
            copying_model_graph(10, 0)
        with pytest.raises(GraphError):
            copying_model_graph(10, 2, copy_prob=2.0)


class TestPowerlawConfiguration:
    def test_degree_bounds(self):
        g = powerlaw_configuration_graph(500, exponent=2.5, min_degree=2, seed=9)
        assert g.num_vertices == 500
        assert g.num_edges > 0

    def test_invalid_exponent(self):
        with pytest.raises(GraphError):
            powerlaw_configuration_graph(100, exponent=1.0)


class TestDeterministicTopologies:
    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4

    def test_star(self):
        g = star_graph(7)
        assert g.degree(0) == 6
        assert all(g.degree(v) == 1 for v in range(1, 7))

    def test_invalid_grid(self):
        with pytest.raises(GraphError):
            grid_graph(0, 3)
