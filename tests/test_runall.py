"""Tests for the run-all report driver."""

from pathlib import Path

from repro.experiments.harness import ExperimentConfig
from repro.experiments.runall import run_all


class TestRunAll:
    def test_generates_all_sections(self, tmp_path):
        config = ExperimentConfig(
            scale=0.03,
            num_landmarks=5,
            num_query_pairs=15,
            num_online_pairs=5,
            construction_budget_s=30,
            datasets=["Skitter", "LiveJournal"],
        )
        output = tmp_path / "report.md"
        report = run_all(config, output=output)
        assert output.exists()
        assert output.read_text() == report
        for heading in [
            "Table 1",
            "Table 2",
            "Table 3",
            "Figure 1",
            "Figure 6",
            "Figure 7",
            "Figure 8",
            "Figure 9",
        ]:
            assert heading in report
        # Regeneration timings are recorded per section.
        assert report.count("regenerated in") == 8
