"""Tests for Algorithm 1 — correctness against the paper's theorems."""

import numpy as np
import pytest

from repro.core.construction import (
    build_highway_cover_labelling,
    pruned_bfs_from_landmark,
)
from repro.core.verification import (
    is_highway_cover,
    is_hwc_minimal,
    labelling_entry_set,
    labelling_sizes_by_order,
    reference_minimal_entries,
)
from repro.errors import ConstructionBudgetExceeded, LandmarkError
from repro.graphs.generators import barabasi_albert_graph, grid_graph, path_graph
from repro.graphs.graph import Graph
from repro.landmarks.selection import select_landmarks
from repro.search.bfs import UNREACHED, bfs_distances


class TestPrunedBFS:
    def test_single_landmark_labels_everything(self):
        """With one landmark no pruning can occur (Lemma 3.7 with |R|=1)."""
        g = barabasi_albert_graph(100, 2, seed=1)
        landmarks = np.asarray([0], dtype=np.int64)
        mask = np.zeros(100, dtype=bool)
        mask[0] = True
        vertices, distances, row = pruned_bfs_from_landmark(g, 0, mask, landmarks)
        dist = bfs_distances(g, 0)
        assert len(vertices) == int((dist != UNREACHED).sum()) - 1
        assert row.tolist() == [0.0]
        reorder = np.argsort(vertices)
        assert np.array_equal(dist[vertices[reorder]], distances[reorder])

    def test_labelled_distances_are_exact(self, ba_graph):
        landmarks = np.asarray(select_landmarks(ba_graph, 6), dtype=np.int64)
        mask = np.zeros(ba_graph.num_vertices, dtype=bool)
        mask[landmarks] = True
        for r in landmarks:
            vertices, distances, _ = pruned_bfs_from_landmark(
                ba_graph, int(r), mask, landmarks
            )
            truth = bfs_distances(ba_graph, int(r))
            assert np.array_equal(truth[vertices], distances)

    def test_landmarks_never_labelled(self, ba_graph):
        landmarks = np.asarray(select_landmarks(ba_graph, 6), dtype=np.int64)
        mask = np.zeros(ba_graph.num_vertices, dtype=bool)
        mask[landmarks] = True
        for r in landmarks:
            vertices, _, _ = pruned_bfs_from_landmark(ba_graph, int(r), mask, landmarks)
            assert not mask[vertices].any()

    def test_highway_row_is_exact(self, ba_graph):
        landmarks = np.asarray(select_landmarks(ba_graph, 6), dtype=np.int64)
        mask = np.zeros(ba_graph.num_vertices, dtype=bool)
        mask[landmarks] = True
        for r in landmarks:
            _, _, row = pruned_bfs_from_landmark(ba_graph, int(r), mask, landmarks)
            truth = bfs_distances(ba_graph, int(r))[landmarks]
            assert np.array_equal(row, truth.astype(float))


class TestAlgorithm1:
    @pytest.mark.parametrize("k", [1, 3, 8])
    def test_lemma_3_7_entry_characterization(self, ba_graph, k):
        """Entries match the brute-force Lemma 3.7 oracle exactly."""
        landmarks = select_landmarks(ba_graph, k)
        labelling, highway = build_highway_cover_labelling(ba_graph, landmarks)
        assert labelling_entry_set(labelling) == reference_minimal_entries(
            ba_graph, highway
        )

    def test_theorem_3_9_highway_cover_property(self, ws_graph):
        landmarks = select_landmarks(ws_graph, 5)
        labelling, highway = build_highway_cover_labelling(ws_graph, landmarks)
        assert is_highway_cover(ws_graph, labelling, highway)

    def test_theorem_3_12_minimality(self, er_graph):
        landmarks = select_landmarks(er_graph, 5)
        labelling, highway = build_highway_cover_labelling(er_graph, landmarks)
        assert is_hwc_minimal(er_graph, labelling, highway)

    def test_lemma_3_11_order_independence(self, ba_graph):
        landmarks = select_landmarks(ba_graph, 6)
        orders = [landmarks, list(reversed(landmarks)), landmarks[3:] + landmarks[:3]]
        sizes = labelling_sizes_by_order(ba_graph, orders)
        assert len(set(sizes.values())) == 1
        # Stronger: per-vertex labels identical (not just sizes).
        base, _ = build_highway_cover_labelling(ba_graph, landmarks)
        other, _ = build_highway_cover_labelling(ba_graph, list(reversed(landmarks)))
        for v in range(ba_graph.num_vertices):
            base_entries = {
                (landmarks[i], d) for i, d in base.label(v).entries()
            }
            rev = list(reversed(landmarks))
            other_entries = {(rev[i], d) for i, d in other.label(v).entries()}
            assert base_entries == other_entries

    def test_highway_matrix_exact_and_symmetric(self, ba_graph):
        landmarks = select_landmarks(ba_graph, 6)
        _, highway = build_highway_cover_labelling(ba_graph, landmarks)
        assert np.allclose(highway.matrix, highway.matrix.T)
        for i, r in enumerate(landmarks):
            truth = bfs_distances(ba_graph, r)[np.asarray(landmarks)]
            assert np.array_equal(highway.matrix[i], truth.astype(float))

    def test_grid_graph(self):
        """Low-degree graphs: labels exist and distances are exact."""
        g = grid_graph(6, 6)
        landmarks = select_landmarks(g, 4)
        labelling, highway = build_highway_cover_labelling(g, landmarks)
        assert is_highway_cover(g, labelling, highway)
        assert is_hwc_minimal(g, labelling, highway)

    def test_disconnected_graph_labels_reachable_side_only(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        labelling, highway = build_highway_cover_labelling(g, [0])
        assert labelling.label_size(1) == 1
        assert labelling.label_size(4) == 0  # other component
        assert highway.distance(0, 0) == 0.0

    def test_all_vertices_landmarks(self):
        g = path_graph(4)
        labelling, highway = build_highway_cover_labelling(g, [0, 1, 2, 3])
        assert labelling.size() == 0  # nothing left to label
        assert highway.distance(0, 3) == 3.0

    def test_no_landmarks_rejected(self, ba_graph):
        with pytest.raises(LandmarkError):
            build_highway_cover_labelling(ba_graph, [])

    def test_budget_exceeded_raises(self, ba_graph):
        landmarks = select_landmarks(ba_graph, 10)
        with pytest.raises(ConstructionBudgetExceeded):
            build_highway_cover_labelling(ba_graph, landmarks, budget_s=1e-9)

    def test_example_graph_label_count(self, example_graph):
        labelling, _ = build_highway_cover_labelling(example_graph, [1, 5, 9])
        assert labelling.size() == 13  # LS in Figure 3
