"""Tests for :class:`~repro.serving.QueryExecutor` and its thread policy.

The acceptance bars from ISSUE 8: thread-parallel ``query_many``
answers are **byte-identical** to the sequential path on every backend;
each worker thread owns its own kernel :class:`Workspace` (never shared
across threads); the steady state allocates zero O(n) scratch; and the
thread-count policy resolves explicit > ``REPRO_THREADS`` > auto
(cores iff the kernel releases the GIL).
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro.api import build_oracle
from repro.core import batch_engine
from repro.core.kernels import available_kernels, get_kernel
from repro.core.kernels import interface as kernel_interface
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.sampling import sample_vertex_pairs
from repro.serving import QueryExecutor, resolve_threads
from repro.serving.executor import ENV_VAR


@pytest.fixture(scope="module")
def exec_graph():
    return barabasi_albert_graph(500, 3, seed=23)


@pytest.fixture(scope="module")
def exec_oracle(exec_graph):
    return build_oracle(exec_graph, "hl", num_landmarks=8)


@pytest.fixture(scope="module")
def exec_pairs(exec_graph):
    return sample_vertex_pairs(exec_graph, 800, seed=29)


class TestByteIdentity:
    @pytest.mark.parametrize("backend", available_kernels())
    def test_parallel_equals_sequential_per_backend(
        self, exec_oracle, exec_pairs, backend
    ):
        exec_oracle.set_kernel(backend)
        try:
            expected = exec_oracle.query_many(exec_pairs)
            with QueryExecutor(threads=4, kernel=backend) as executor:
                answer = executor.run(exec_oracle.query_many, exec_pairs)
                stats = executor.stats()
        finally:
            exec_oracle.set_kernel(None)
        assert answer.dtype == expected.dtype
        assert np.array_equal(answer, expected)
        assert stats["parallel_batches"] == 1

    def test_tuple_results_reassemble_aligned(self, exec_oracle, exec_pairs):
        """``(distances, covered)`` tuples concatenate per position."""
        expected = exec_oracle.query_many(exec_pairs, return_coverage=True)
        with QueryExecutor(threads=4) as executor:
            got = executor.run(
                lambda chunk: exec_oracle.query_many(
                    chunk, return_coverage=True
                ),
                exec_pairs,
            )
        assert isinstance(got, tuple) and len(got) == 2
        for got_part, want_part in zip(got, expected):
            assert np.array_equal(got_part, want_part)

    def test_uneven_split_preserves_order(self):
        """101 rows across 4 threads: np.array_split chunks unevenly but
        the reassembled answer is still in submission order."""
        pairs = np.arange(202, dtype=np.int64).reshape(101, 2)
        with QueryExecutor(threads=4, min_chunk=1) as executor:
            answer = executor.run(
                lambda chunk: chunk[:, 0].astype(float), pairs
            )
        assert np.array_equal(answer, pairs[:, 0].astype(float))

    def test_verify_mode_self_checks(self, exec_oracle, exec_pairs):
        with QueryExecutor(threads=2, verify=True) as executor:
            answer = executor.run(exec_oracle.query_many, exec_pairs)
        assert np.array_equal(answer, exec_oracle.query_many(exec_pairs))

    def test_small_batches_run_inline(self, exec_oracle):
        """Batches under 2 * min_chunk never pay the thread handoff."""
        pairs = np.zeros((10, 2), dtype=np.int64)
        with QueryExecutor(threads=4, min_chunk=64) as executor:
            executor.run(exec_oracle.query_many, pairs)
            stats = executor.stats()
        assert stats["sequential_batches"] == 1
        assert stats["parallel_batches"] == 0
        assert stats["per_thread"] == []  # pool never spun up


class TestResolveThreads:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "7")
        assert resolve_threads(3) == 3

    def test_env_is_an_explicit_request(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "5")
        assert resolve_threads() == 5

    @pytest.mark.parametrize("bad", ["zero", "1.5", "0", "-2"])
    def test_bad_env_fails_loudly(self, monkeypatch, bad):
        monkeypatch.setenv(ENV_VAR, bad)
        with pytest.raises(ValueError):
            resolve_threads()

    def test_explicit_zero_rejected(self):
        with pytest.raises(ValueError, match="at least 1"):
            resolve_threads(0)

    def test_auto_is_sequential_on_gil_bound_kernels(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_threads(kernel="numpy") == 1

    @pytest.mark.skipif(
        "cext" not in available_kernels(), reason="no C compiler"
    )
    def test_auto_uses_cores_on_no_gil_kernels(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_threads(kernel="cext") == max(1, os.cpu_count() or 1)
        assert get_kernel("cext").releases_gil

    def test_for_oracle_consults_kernel_backend(self, exec_oracle, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        with QueryExecutor.for_oracle(exec_oracle) as executor:
            expected = (
                max(1, os.cpu_count() or 1)
                if exec_oracle.kernel_backend.releases_gil
                else 1
            )
            assert executor.threads == expected

    def test_for_oracle_without_kernel_seam_is_sequential(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)

        class Looped:  # no kernel_backend attribute, like the baselines
            pass

        with QueryExecutor.for_oracle(Looped()) as executor:
            assert executor.threads == 1
        with QueryExecutor.for_oracle(Looped(), threads=3) as executor:
            assert executor.threads == 3


class TestWorkspaceIsolation:
    def test_sixteen_threads_never_share_a_workspace(
        self, exec_oracle, exec_graph, monkeypatch
    ):
        """Hammer one oracle from 16 pool threads: every thread must get
        its own Workspace, and no workspace may appear on two threads."""
        real = batch_engine.get_workspace
        seen: dict = {}  # thread ident -> set of workspace ids
        record_lock = threading.Lock()

        def recording(n):
            ws = real(n)
            with record_lock:
                seen.setdefault(threading.get_ident(), set()).add(id(ws))
            return ws

        monkeypatch.setattr(batch_engine, "get_workspace", recording)
        pairs = sample_vertex_pairs(exec_graph, 640, seed=31)
        expected = exec_oracle.query_many(pairs)
        with QueryExecutor(threads=16, min_chunk=1) as executor:
            for _ in range(3):
                answer = executor.run(exec_oracle.query_many, pairs)
                assert np.array_equal(answer, expected)
        worker_spaces = {
            ident: spaces
            for ident, spaces in seen.items()
            if ident != threading.get_ident()
        }
        assert len(worker_spaces) == 16  # all 16 workers did real work
        for spaces in worker_spaces.values():
            assert len(spaces) == 1  # one workspace per thread, reused
        all_spaces = [ws for s in worker_spaces.values() for ws in s]
        assert len(all_spaces) == len(set(all_spaces))  # none shared

    def test_steady_state_allocates_no_scratch(
        self, exec_oracle, exec_pairs, monkeypatch
    ):
        """After warmup, parallel batches reuse every thread's scratch:
        the counting allocator must observe zero O(n) allocations."""
        with QueryExecutor(threads=8, min_chunk=1) as executor:
            warm = executor.run(exec_oracle.query_many, exec_pairs)

            allocations = []
            real_alloc = kernel_interface.scratch_alloc

            def counting_alloc(n, dtype):
                allocations.append((n, dtype))
                return real_alloc(n, dtype)

            monkeypatch.setattr(
                kernel_interface, "scratch_alloc", counting_alloc
            )
            hot = executor.run(exec_oracle.query_many, exec_pairs)
        assert np.array_equal(hot, warm)
        assert allocations == [], (
            f"steady-state parallel batches allocated O(n) scratch: "
            f"{allocations[:4]}"
        )


class TestLifecycleAndErrors:
    def test_chunk_errors_propagate_after_batch_settles(self):
        pairs = np.zeros((256, 2), dtype=np.int64)
        calls = []

        def flaky(chunk):
            calls.append(len(chunk))
            if len(calls) == 2:
                raise RuntimeError("chunk exploded")
            return np.zeros(len(chunk))

        with QueryExecutor(threads=4, min_chunk=1) as executor:
            with pytest.raises(RuntimeError, match="chunk exploded"):
                executor.run(flaky, pairs)
            assert len(calls) == 4  # every chunk ran; no orphan writers
            # The pool survives a failed batch.
            answer = executor.run(lambda c: np.ones(len(c)), pairs)
        assert np.array_equal(answer, np.ones(len(pairs)))

    def test_close_is_idempotent_and_final(self, exec_oracle, exec_pairs):
        executor = QueryExecutor(threads=2)
        executor.run(exec_oracle.query_many, exec_pairs)
        executor.close()
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.run(exec_oracle.query_many, exec_pairs)

    def test_stats_shape(self, exec_oracle, exec_pairs):
        with QueryExecutor(threads=3, kernel="numpy") as executor:
            executor.run(exec_oracle.query_many, exec_pairs)
            stats = executor.stats()
        assert stats["threads"] == 3
        assert stats["kernel"] == "numpy"
        assert stats["parallel_batches"] == 1
        assert len(stats["per_thread"]) == 3
        assert sum(t["chunks"] for t in stats["per_thread"]) == 3
        for t in stats["per_thread"]:
            assert t["busy_s"] >= 0.0
            assert 0.0 <= t["utilization"] <= 1.0 + 1e-6

    def test_run_serializes_concurrent_callers(self, exec_oracle, exec_pairs):
        """run() from many client threads at once stays exact (batches
        are serialized internally, one in flight at a time)."""
        expected = exec_oracle.query_many(exec_pairs)
        results = [None] * 6
        with QueryExecutor(threads=4, min_chunk=1) as executor:

            def client(slot):
                results[slot] = executor.run(
                    exec_oracle.query_many, exec_pairs
                )

            clients = [
                threading.Thread(target=client, args=(i,)) for i in range(6)
            ]
            for c in clients:
                c.start()
            for c in clients:
                c.join()
            stats = executor.stats()
        for got in results:
            assert np.array_equal(got, expected)
        assert stats["parallel_batches"] == 6
