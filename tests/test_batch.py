"""Tests for vectorized batch queries."""

import numpy as np
import pytest

from repro.core.batch import batch_query, batch_upper_bounds, coverage_ratio
from repro.core.query import HighwayCoverOracle
from repro.graphs.sampling import sample_vertex_pairs


@pytest.fixture(scope="module")
def oracle(request):
    from repro.graphs.generators import barabasi_albert_graph

    graph = barabasi_albert_graph(300, 3, seed=11)
    return HighwayCoverOracle(num_landmarks=8).build(graph)


class TestBatchQuery:
    def test_matches_scalar_queries(self, oracle):
        pairs = sample_vertex_pairs(oracle.graph, 150, seed=2)
        distances, covered = batch_query(oracle, pairs, return_coverage=True)
        for i, (s, t) in enumerate(pairs):
            assert distances[i] == oracle.query(int(s), int(t))
            assert covered[i] == oracle.is_covered(int(s), int(t))

    def test_same_vertex_pairs(self, oracle):
        pairs = np.asarray([[3, 3], [5, 5]])
        distances, covered = batch_query(oracle, pairs, return_coverage=True)
        assert distances.tolist() == [0.0, 0.0]
        assert covered.all()

    def test_landmark_pairs(self, oracle):
        landmarks = [int(r) for r in oracle.highway.landmarks[:3]]
        pairs = np.asarray([[landmarks[0], landmarks[1]], [landmarks[2], 100]])
        distances, _ = batch_query(oracle, pairs, return_coverage=True)
        assert distances[0] == oracle.query(landmarks[0], landmarks[1])
        assert distances[1] == oracle.query(landmarks[2], 100)

    def test_bad_shape_rejected(self, oracle):
        with pytest.raises(ValueError):
            batch_query(oracle, np.asarray([1, 2, 3]))

    def test_without_coverage(self, oracle):
        pairs = sample_vertex_pairs(oracle.graph, 20, seed=3)
        distances, covered = batch_query(oracle, pairs)
        assert covered is None
        assert len(distances) == 20


class TestBounds:
    def test_batch_bounds_match_scalar(self, oracle):
        pairs = sample_vertex_pairs(oracle.graph, 60, seed=4)
        bounds = batch_upper_bounds(oracle, pairs)
        for i, (s, t) in enumerate(pairs):
            assert bounds[i] == oracle.upper_bound(int(s), int(t))


class TestCoverage:
    def test_ratio_in_unit_interval(self, oracle):
        pairs = sample_vertex_pairs(oracle.graph, 100, seed=5)
        ratio = coverage_ratio(oracle, pairs)
        assert 0.0 <= ratio <= 1.0

    def test_empty_pairs(self, oracle):
        assert coverage_ratio(oracle, np.empty((0, 2), dtype=np.int64)) == 0.0
