"""Crash-injection tests: atomic publish, spool restart, SIGKILL recovery.

These tests simulate the failure modes the durability layer exists for:
a publisher killed mid-``os.replace`` (the old generation must survive),
a writer SIGKILLed mid-churn (the WAL must replay to the exact state),
and spool restarts (sequence numbers must never be reused).
"""

import os
import signal
import struct
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api import build_oracle, open_oracle
from repro.core.fsck import fsck_path
from repro.core.query import HighwayCoverOracle
from repro.core.serialization import SnapshotSpool, load_oracle, save_oracle
from repro.core.wal import scan_wal
from repro.errors import ReproError
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.io import read_binary
from repro.graphs.sampling import sample_vertex_pairs

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


def _child_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep * bool(env.get("PYTHONPATH", "")) + env.get(
        "PYTHONPATH", ""
    )
    return env


def _wait_for(predicate, timeout=30.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


class TestAtomicSave:
    def test_interrupted_save_leaves_no_partial_file(self, ba_graph, tmp_path, monkeypatch):
        # A save that dies before the rename must leave neither a
        # partial file at the final name nor temp debris behind.
        import repro.core.serialization as ser

        oracle = HighwayCoverOracle(num_landmarks=4).build(ba_graph)
        target = tmp_path / "index.hl"
        save_oracle(oracle, target)
        before = target.read_bytes()

        def exploding_replace(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(ser.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            save_oracle(oracle, target)
        monkeypatch.undo()

        assert target.read_bytes() == before  # old file untouched
        assert list(tmp_path.glob("*.tmp")) == []  # debris cleaned up

    def test_save_overwrites_atomically(self, ba_graph, tmp_path):
        oracle = HighwayCoverOracle(num_landmarks=4).build(ba_graph)
        target = tmp_path / "index.hl"
        save_oracle(oracle, target)
        save_oracle(oracle, target)  # overwrite via rename, not truncate
        assert load_oracle(ba_graph, target).labelling == oracle.labelling.as_vertex_major()


class TestSnapshotSpoolDurability:
    def test_sequence_resumes_after_restart(self, ba_graph, tmp_path):
        oracle = HighwayCoverOracle(num_landmarks=4).build(ba_graph)
        first = SnapshotSpool(tmp_path / "spool")
        assert first.publish(oracle).name == "gen-000000.hl"
        assert first.publish(oracle).name == "gen-000001.hl"

        # A restarted writer must continue the sequence, never reuse a
        # number an old worker may still have mapped.
        second = SnapshotSpool(tmp_path / "spool")
        assert second.publish(oracle).name == "gen-000002.hl"
        assert second.latest().name == "gen-000002.hl"
        assert [p.name for p in second.generations()] == [
            "gen-000000.hl",
            "gen-000001.hl",
            "gen-000002.hl",
        ]

    def test_owned_spool_refuses_close_with_live_generations(self, ba_graph):
        oracle = HighwayCoverOracle(num_landmarks=4).build(ba_graph)
        spool = SnapshotSpool()  # owned temporary directory
        path = spool.publish(oracle)
        assert spool.live_generations() == [path]
        with pytest.raises(ReproError, match="live generations"):
            spool.close()
        assert path.exists()  # refusal must not have deleted anything
        spool.retire(path)
        spool.close()  # no longer live -> allowed
        assert not spool.directory.exists()

    def test_forced_close_overrides_live_guard(self, ba_graph):
        oracle = HighwayCoverOracle(num_landmarks=4).build(ba_graph)
        spool = SnapshotSpool()
        spool.publish(oracle)
        spool.close(force=True)
        assert not spool.directory.exists()

    def test_unowned_spool_close_keeps_directory(self, ba_graph, tmp_path):
        oracle = HighwayCoverOracle(num_landmarks=4).build(ba_graph)
        spool = SnapshotSpool(tmp_path / "spool")
        path = spool.publish(oracle)
        spool.close()  # caller's directory: never deleted
        assert path.exists()

    def test_graph_sidecar_round_trip(self, ba_graph, tmp_path):
        oracle = HighwayCoverOracle(num_landmarks=4).build(ba_graph)
        spool = SnapshotSpool(tmp_path / "spool")
        path = spool.publish(oracle, graph=True)
        sidecar = SnapshotSpool.graph_sidecar_for(path)
        assert sidecar.exists()
        restored = read_binary(sidecar)
        assert restored.num_vertices == ba_graph.num_vertices
        assert sorted(restored.edges()) == sorted(ba_graph.edges())
        spool.retire(path)
        assert not sidecar.exists()

    def test_interrupted_publish_keeps_previous_generation(
        self, ba_graph, tmp_path, monkeypatch
    ):
        import repro.core.serialization as ser

        oracle = HighwayCoverOracle(num_landmarks=4).build(ba_graph)
        spool = SnapshotSpool(tmp_path / "spool")
        gen0 = spool.publish(oracle)
        before = gen0.read_bytes()

        monkeypatch.setattr(
            ser.os, "replace", lambda src, dst: (_ for _ in ()).throw(OSError("crash"))
        )
        with pytest.raises(OSError):
            spool.publish(oracle)
        monkeypatch.undo()

        assert gen0.read_bytes() == before
        assert spool.generations() == [gen0]  # no partial gen-000001.hl
        loaded = load_oracle(ba_graph, gen0, mmap=True)
        assert loaded.query(0, 1) == oracle.query(0, 1)


_KILL_MID_PUBLISH_CHILD = textwrap.dedent(
    """
    import os, sys, time
    from pathlib import Path

    import repro.core.serialization as ser
    from repro.core.dynamic import DynamicHighwayCoverOracle
    from repro.core.serialization import SnapshotSpool
    from repro.core.wal import WriteAheadLog
    from repro.graphs.generators import barabasi_albert_graph

    workdir = Path(sys.argv[1])
    graph = barabasi_albert_graph(120, 2, seed=41)
    oracle = DynamicHighwayCoverOracle(num_landmarks=6).build(graph)
    spool = SnapshotSpool(workdir / "spool")
    spool.publish(oracle)  # gen-000000.hl, complete

    oracle.attach_wal(WriteAheadLog(workdir / "wal.log"))
    u, v = map(int, sys.argv[2:4])
    oracle.insert_edge(u, v)

    real_replace = os.replace
    def stalling_replace(src, dst):
        (workdir / "mid-publish").touch()  # signal: tmp written + fsynced
        time.sleep(120)                    # parent SIGKILLs us here
        real_replace(src, dst)

    ser.os.replace = stalling_replace
    spool.publish(oracle)  # never completes
    """
)


class TestKillWriterMidPublish:
    def test_old_generation_survives_kill_mid_publish(self, tmp_path):
        graph = barabasi_albert_graph(120, 2, seed=41)
        u, v = next(
            (a, b)
            for a in range(120)
            for b in range(a + 1, 120)
            if not graph.has_edge(a, b)
        )
        child = subprocess.Popen(
            [sys.executable, "-c", _KILL_MID_PUBLISH_CHILD, str(tmp_path), str(u), str(v)],
            env=_child_env(),
        )
        try:
            _wait_for(
                (tmp_path / "mid-publish").exists,
                message="child to reach the stalled rename",
            )
        finally:
            child.kill()
            child.wait()

        spool_dir = tmp_path / "spool"
        # The second publish never reached its final name: the only
        # generation is the old one, plus nameless temp debris.
        assert [p.name for p in sorted(spool_dir.glob("*.hl"))] == ["gen-000000.hl"]
        assert len(list(spool_dir.glob("*.tmp"))) == 1

        # The old generation is intact, fsck-clean, and mappable.
        gen0 = spool_dir / "gen-000000.hl"
        assert fsck_path(gen0).ok
        oracle0 = load_oracle(graph, gen0, mmap=True)

        # The WAL holds the un-snapshotted update; restart = gen0 + replay
        # serves the same distances as a fresh build of the final graph.
        assert [(r.op, r.u, r.v) for r in scan_wal(tmp_path / "wal.log").records] == [
            ("insert_edge", u, v)
        ]
        recovered = open_oracle(graph, index=gen0, wal=tmp_path / "wal.log")
        fresh = build_oracle(
            graph.with_edges_added([(u, v)]), "hl", num_landmarks=6
        )
        pairs = sample_vertex_pairs(graph, 150, seed=7)
        assert np.array_equal(recovered.query_many(pairs), fresh.query_many(pairs))
        recovered.wal.close()

        # A restarted spool resumes numbering past the surviving file.
        restarted = SnapshotSpool(spool_dir)
        assert restarted.publish(oracle0).name == "gen-000001.hl"


_KILL_MID_CHURN_CHILD = textwrap.dedent(
    """
    import sys
    from pathlib import Path

    from repro.api import open_oracle
    from repro.graphs.generators import barabasi_albert_graph

    workdir = Path(sys.argv[1])
    graph = barabasi_albert_graph(120, 2, seed=42)
    oracle = open_oracle(graph, wal=workdir / "wal.log", num_landmarks=6)

    inserted = []
    candidates = (
        (u, v)
        for u in range(120)
        for v in range(u + 1, 120)
        if not graph.has_edge(u, v)
    )
    (workdir / "churning").touch()
    while True:  # churn until the parent SIGKILLs us
        u, v = next(candidates)
        oracle.insert_edge(u, v)
        inserted.append((u, v))
        if len(inserted) % 3 == 0:
            du, dv = inserted.pop(0)
            oracle.delete_edge(du, dv)
    """
)


class TestSigkillMidChurn:
    def test_restart_replays_to_byte_identical_distances(self, tmp_path):
        wal_path = tmp_path / "wal.log"
        child = subprocess.Popen(
            [sys.executable, "-c", _KILL_MID_CHURN_CHILD, str(tmp_path)],
            env=_child_env(),
        )
        try:
            # Let it apply a nontrivial amount of churn, then pull the plug.
            _wait_for(
                lambda: wal_path.exists() and wal_path.stat().st_size > 8 + 25 * 10,
                message="at least 10 WAL records",
            )
            time.sleep(0.2)  # land the kill at an arbitrary point
        finally:
            child.kill()
            child.wait()

        # Every acknowledged record survives; a torn tail is possible
        # but must be repaired silently on reopen.
        scan = scan_wal(wal_path)
        assert len(scan.records) >= 10

        graph = barabasi_albert_graph(120, 2, seed=42)
        recovered = open_oracle(graph, wal=wal_path, num_landmarks=6)
        assert len(recovered.wal) == len(scan.records)

        # Rebuild the final graph from the log and compare byte-for-byte.
        final = graph
        for record in scan.records:
            if record.op == "insert_edge":
                final = final.with_edges_added([(record.u, record.v)])
            else:
                final = final.with_edges_removed([(record.u, record.v)])
        fresh = build_oracle(final, "hl", num_landmarks=6)
        pairs = sample_vertex_pairs(graph, 200, seed=8)
        assert np.array_equal(recovered.query_many(pairs), fresh.query_many(pairs))
        assert (
            recovered.labelling.as_vertex_major() == fresh.labelling.as_vertex_major()
        )
        recovered.wal.close()


class TestShardedServiceRecovery:
    def test_sharded_restart_replays_wal(self, tmp_path):
        graph = barabasi_albert_graph(120, 2, seed=43)
        (u1, v1), (u2, v2) = [
            pair
            for pair in ((a, b) for a in range(120) for b in range(a + 1, 120))
            if not graph.has_edge(*pair)
        ][:2]
        wal_path = tmp_path / "wal.log"

        service = open_oracle(
            graph, shards=2, wal=wal_path, num_landmarks=6, spool_dir=tmp_path / "spool"
        )
        try:
            service.insert_edge(u1, v1)
            stats = service.stats()
            assert stats["wal"] == str(wal_path)
            # Remap mode publishes + truncates after every update.
            assert stats["wal_records"] == 0
            pairs = sample_vertex_pairs(graph, 100, seed=9)
            expected = service.query_many(pairs)
            latest = Path(stats["snapshot"])
            sidecar = SnapshotSpool.graph_sidecar_for(latest)
            assert sidecar.exists()  # recovery can reconstruct the graph
        finally:
            service.close()

        # Restart against the published generation's graph + the WAL.
        restarted = open_oracle(
            read_binary(sidecar),
            shards=2,
            index=latest,
            wal=wal_path,
            spool_dir=tmp_path / "spool2",
        )
        try:
            assert np.array_equal(restarted.query_many(pairs), expected)
            restarted.insert_edge(u2, v2)
            fresh = build_oracle(
                graph.with_edges_added([(u1, v1), (u2, v2)]),
                "hl",
                num_landmarks=6,
            )
            assert np.array_equal(restarted.query_many(pairs), fresh.query_many(pairs))
        finally:
            restarted.close()
