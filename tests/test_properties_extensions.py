"""Property-based tests for the extension modules.

Hypothesis drives random graphs and random mutations through the
dynamic-update, serialization, batch and path-reconstruction layers,
asserting each is indistinguishable from the ground-truth recomputation.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.batch import batch_query
from repro.core.dynamic import DynamicHighwayCoverOracle
from repro.core.paths import shortest_path
from repro.core.query import HighwayCoverOracle
from repro.core.serialization import load_oracle, save_oracle
from repro.graphs.graph import Graph
from repro.search.bfs import UNREACHED, bfs_distances


@st.composite
def connected_graphs(draw, min_vertices=3, max_vertices=30):
    """A random connected graph (random tree plus extra edges)."""
    n = draw(st.integers(min_vertices, max_vertices))
    parents = [draw(st.integers(0, i - 1)) for i in range(1, n)]
    edges = [(i + 1, p) for i, p in enumerate(parents)]
    extra = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=2 * n,
        )
    )
    edges.extend((u, v) for u, v in extra if u != v)
    return Graph(n, edges)


@st.composite
def graphs_with_landmarks(draw):
    graph = draw(connected_graphs())
    k = draw(st.integers(1, min(5, graph.num_vertices)))
    landmarks = draw(
        st.lists(
            st.integers(0, graph.num_vertices - 1),
            min_size=k,
            max_size=k,
            unique=True,
        )
    )
    return graph, landmarks


@given(graphs_with_landmarks(), st.data())
@settings(max_examples=40, deadline=None)
def test_dynamic_insert_equals_rebuild(graph_landmarks, data):
    """After any insertion, the repaired index equals a fresh build."""
    graph, landmarks = graph_landmarks
    oracle = DynamicHighwayCoverOracle(landmarks=landmarks).build(graph)
    n = graph.num_vertices
    u = data.draw(st.integers(0, n - 1))
    v = data.draw(st.integers(0, n - 1))
    if u == v or graph.has_edge(u, v):
        return
    oracle.insert_edge(u, v)
    fresh = HighwayCoverOracle(landmarks=landmarks).build(oracle.graph)
    assert oracle.labelling == fresh.labelling
    assert np.array_equal(oracle.highway.matrix, fresh.highway.matrix)


@given(graphs_with_landmarks(), st.data())
@settings(max_examples=30, deadline=None)
def test_serialization_round_trip(graph_landmarks, data):
    import tempfile
    from pathlib import Path

    graph, landmarks = graph_landmarks
    oracle = HighwayCoverOracle(landmarks=landmarks).build(graph)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "index.hl"
        save_oracle(oracle, path)
        loaded = load_oracle(graph, path)
    s = data.draw(st.integers(0, graph.num_vertices - 1))
    t = data.draw(st.integers(0, graph.num_vertices - 1))
    assert loaded.query(s, t) == oracle.query(s, t)
    assert loaded.labelling == oracle.labelling


@given(graphs_with_landmarks())
@settings(max_examples=30, deadline=None)
def test_batch_query_equals_scalar(graph_landmarks):
    graph, landmarks = graph_landmarks
    oracle = HighwayCoverOracle(landmarks=landmarks).build(graph)
    rng = np.random.default_rng(1)
    pairs = rng.integers(0, graph.num_vertices, size=(12, 2))
    distances, covered = batch_query(oracle, pairs, return_coverage=True)
    for i, (s, t) in enumerate(pairs):
        assert distances[i] == oracle.query(int(s), int(t))
        assert covered[i] == oracle.is_covered(int(s), int(t))


@given(graphs_with_landmarks(), st.data())
@settings(max_examples=40, deadline=None)
def test_path_reconstruction_valid_and_tight(graph_landmarks, data):
    graph, landmarks = graph_landmarks
    oracle = HighwayCoverOracle(landmarks=landmarks).build(graph)
    s = data.draw(st.integers(0, graph.num_vertices - 1))
    t = data.draw(st.integers(0, graph.num_vertices - 1))
    path = shortest_path(oracle, s, t)
    truth = bfs_distances(graph, s)[t]
    if truth == UNREACHED:
        assert path is None
        return
    assert path is not None
    assert path[0] == s and path[-1] == t
    assert len(path) - 1 == truth
    for a, b in zip(path, path[1:]):
        assert graph.has_edge(a, b)
