"""The kernel layer: registry, conformance gauntlet, and hot-path fixes.

Covers:

* backend selection — explicit names, the ``REPRO_KERNEL`` environment
  variable, auto-detection order, and the error contract
  (:class:`KernelError` / :class:`KernelUnavailableError`);
* the conformance gauntlet — every backend available in this
  environment answers byte-identically across the builder harness's
  topology grid, the op-level interface, and the committed durability
  snapshot;
* the profiler-surfaced hot-path fixes — ``is_covered`` computing its
  bound once, steady-state point queries allocating no O(n) scratch,
  and provably-disconnected pairs skipping the search entirely.
"""

from __future__ import annotations

import pickle
from pathlib import Path

import numpy as np
import pytest

from repro.api import build_oracle, make_oracle, open_oracle
from repro.core import kernels as kernel_registry
from repro.core.kernels import (
    AUTO_ORDER,
    KERNEL_NAMES,
    KernelBackend,
    available_kernels,
    get_kernel,
    get_label_state,
    get_workspace,
    resolve_kernel,
)
from repro.core.kernels import interface as kernel_interface
from repro.core.query import HighwayCoverOracle
from repro.errors import KernelError, KernelUnavailableError
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.graph import Graph
from repro.search.bfs import UNREACHED, bfs_distances

from builder_harness import (
    _disconnected_graph,
    assert_kernels_agree,
    harness_cases,
    sample_query_pairs,
)

FIXTURE_SNAPSHOT = (
    Path(__file__).resolve().parent / "fixtures" / "durability" / "clean.hl"
)


class CountingKernel(KernelBackend):
    """Delegating backend that counts calls per operation."""

    compiled = False
    releases_gil = False

    def __init__(self, inner: KernelBackend) -> None:
        self.inner = inner
        self.name = inner.name
        self.calls = {
            "decode": 0,
            "upper_bound": 0,
            "bounded_distance": 0,
            "multi_target": 0,
        }

    def decode(self, state, r_index, vertex):
        self.calls["decode"] += 1
        return self.inner.decode(state, r_index, vertex)

    def upper_bound(self, state, s, t):
        self.calls["upper_bound"] += 1
        return self.inner.upper_bound(state, s, t)

    def bounded_distance(self, csr, source, target, bound, excluded, workspace):
        self.calls["bounded_distance"] += 1
        return self.inner.bounded_distance(
            csr, source, target, bound, excluded, workspace
        )

    def multi_target(self, csr, n, sources, targets, target_group, bounds,
                     excluded, workspace, cells_budget=1 << 26):
        self.calls["multi_target"] += 1
        return self.inner.multi_target(
            csr, n, sources, targets, target_group, bounds, excluded,
            workspace, cells_budget,
        )


def _counting_oracle(graph, **options):
    """A built oracle whose backend records per-operation call counts.

    The counter is attached directly to ``oracle.kernel`` (bypassing
    ``set_kernel``, which normalizes to registry names so oracles stay
    picklable).
    """
    oracle = HighwayCoverOracle(**options).build(graph)
    counter = CountingKernel(get_kernel("numpy"))
    oracle.kernel = counter
    oracle._batch_engine = None
    return oracle, counter


# -- Registry and selection ---------------------------------------------------


class TestRegistry:
    def test_numpy_and_pyloop_always_available(self):
        names = available_kernels()
        assert "numpy" in names and "pyloop" in names

    def test_backends_are_cached_singletons(self):
        assert get_kernel("numpy") is get_kernel("numpy")
        assert get_kernel("pyloop") is get_kernel("pyloop")

    def test_unknown_name_raises_kernel_error(self):
        with pytest.raises(KernelError, match="unknown kernel"):
            get_kernel("fortran")

    def test_unavailable_backend_raises(self):
        from repro.core.kernels.jit import HAVE_NUMBA

        if HAVE_NUMBA:
            pytest.skip("numba installed here; unavailability not testable")
        with pytest.raises(KernelUnavailableError):
            get_kernel("numba")

    def test_auto_detection_never_picks_pyloop(self, monkeypatch):
        monkeypatch.delenv(kernel_registry.ENV_VAR, raising=False)
        assert "pyloop" not in AUTO_ORDER
        assert get_kernel().name in AUTO_ORDER

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(kernel_registry.ENV_VAR, "pyloop")
        assert get_kernel().name == "pyloop"

    def test_env_var_is_an_explicit_request(self, monkeypatch):
        monkeypatch.setenv(kernel_registry.ENV_VAR, "no-such-kernel")
        with pytest.raises(KernelError):
            get_kernel()

    def test_resolve_passes_backend_instances_through(self):
        backend = get_kernel("numpy")
        assert resolve_kernel(backend) is backend
        assert resolve_kernel("numpy") is backend
        assert resolve_kernel(None).name in KERNEL_NAMES

    def test_gil_and_compilation_metadata(self):
        expectations = {
            "numpy": (False, False),
            "pyloop": (False, False),
            "cext": (True, True),
            "numba": (True, True),
        }
        for name in available_kernels():
            backend = get_kernel(name)
            compiled, releases_gil = expectations[name]
            assert backend.compiled is compiled
            assert backend.releases_gil is releases_gil

    def test_oracle_rejects_unknown_kernel_eagerly(self):
        with pytest.raises(KernelError):
            HighwayCoverOracle(num_landmarks=2, kernel="fortran")

    def test_set_kernel_validates_and_stores_the_name(self, ba_graph):
        oracle = HighwayCoverOracle(num_landmarks=4).build(ba_graph)
        with pytest.raises(KernelError):
            oracle.set_kernel("fortran")
        oracle.set_kernel("pyloop")
        assert oracle.kernel == "pyloop"
        assert oracle.kernel_backend.name == "pyloop"
        oracle.set_kernel(None)
        assert oracle.kernel is None

    def test_make_oracle_kernel_is_hl_family_only(self):
        oracle = make_oracle("hl", kernel="numpy")
        assert oracle.kernel == "numpy"
        with pytest.raises(ValueError, match="kernel seam"):
            make_oracle("bfs", kernel="numpy")


# -- Conformance gauntlet -----------------------------------------------------


@pytest.mark.parametrize(
    "case_id,graph,landmarks",
    [pytest.param(*case, id=case[0]) for case in harness_cases()],
)
def test_kernels_agree_across_topologies(case_id, graph, landmarks):
    """Every available backend is byte-identical on the harness grid."""
    assert_kernels_agree(graph, landmarks)


class TestOpLevelConformance:
    """Direct backend-interface comparisons (masks, inf bounds, decode)."""

    @pytest.fixture(scope="class")
    def built(self, ba_graph):
        oracle = HighwayCoverOracle(num_landmarks=8).build(ba_graph)
        state = get_label_state(oracle.labelling, oracle.highway)
        return oracle, state

    def test_decode_matches_reference(self, built):
        oracle, state = built
        reference = get_kernel("numpy")
        rng = np.random.default_rng(5)
        vertices = rng.integers(0, oracle.graph.num_vertices, size=24)
        for name in available_kernels():
            backend = get_kernel(name)
            for r_index in range(oracle.highway.num_landmarks):
                for v in vertices:
                    v = int(v)
                    if state.count(v) == 0:
                        continue
                    assert backend.decode(state, r_index, v) == reference.decode(
                        state, r_index, v
                    ), f"{name}: decode({r_index}, {v})"

    def test_bounded_distance_with_and_without_mask(self, built):
        oracle, _ = built
        graph, mask = oracle.graph, oracle._landmark_mask
        reference = get_kernel("numpy")
        workspace = get_workspace(graph.num_vertices)
        rng = np.random.default_rng(6)
        free = np.flatnonzero(~mask)
        cases = []
        for _ in range(40):
            s, t = rng.choice(free, size=2, replace=False)
            for bound in (2.0, 3.0, 6.0, float("inf")):
                cases.append((int(s), int(t), bound))
        for name in available_kernels():
            backend = get_kernel(name)
            for s, t, bound in cases:
                for excluded in (None, mask):
                    got = backend.bounded_distance(
                        graph.csr, s, t, bound, excluded, workspace
                    )
                    want = reference.bounded_distance(
                        graph.csr, s, t, bound, excluded, workspace
                    )
                    assert got == want, f"{name}: ({s},{t},{bound},{excluded is not None})"
                # The workspace contract: side is clean between calls.
                assert not workspace.side.any()

    def test_multi_target_with_inf_bounds(self, built):
        oracle, _ = built
        graph, mask = oracle.graph, oracle._landmark_mask
        reference = get_kernel("numpy")
        workspace = get_workspace(graph.num_vertices)
        rng = np.random.default_rng(7)
        free = np.flatnonzero(~mask)
        sources = rng.choice(free, size=6, replace=False).astype(np.int64)
        targets, groups, bounds = [], [], []
        for g, src in enumerate(sources):
            picks = rng.choice(free[free != src], size=5, replace=False)
            targets.extend(int(p) for p in picks)
            groups.extend([g] * 5)
            bounds.extend([2.0, 3.0, 4.0, 5.0, float("inf")])
        targets = np.array(targets, dtype=np.int64)
        groups = np.array(groups, dtype=np.int64)
        bounds = np.array(bounds, dtype=float)
        want = reference.multi_target(
            graph.csr, graph.num_vertices, sources, targets, groups,
            bounds, mask, workspace,
        )
        for name in available_kernels():
            backend = get_kernel(name)
            got = backend.multi_target(
                graph.csr, graph.num_vertices, sources, targets, groups,
                bounds, mask, workspace,
            )
            assert np.array_equal(got, want), f"{name}: multi_target diverged"
            assert (workspace.levels == -1).all()


def test_kernels_agree_on_committed_snapshot():
    """All backends answer identically from the durability fixture."""
    graph = barabasi_albert_graph(60, 2, seed=97)
    rng = np.random.default_rng(8)
    pairs = rng.integers(0, graph.num_vertices, size=(200, 2), dtype=np.int64)
    reference = None
    for name in available_kernels():
        oracle = open_oracle(graph, index=FIXTURE_SNAPSHOT, kernel=name)
        assert oracle.kernel == name
        distances = oracle.query_many(pairs)
        if reference is None:
            reference = (name, distances)
        else:
            assert np.array_equal(distances, reference[1]), (
                f"kernel {name!r} diverged from {reference[0]!r} on clean.hl"
            )


def test_oracle_with_kernel_survives_pickling(ba_graph):
    """Backends never ride along in pickles — only the request name does."""
    for name in available_kernels():
        oracle = HighwayCoverOracle(num_landmarks=4, kernel=name).build(ba_graph)
        assert oracle.query(1, 200) == pickle.loads(pickle.dumps(oracle)).query(
            1, 200
        )


# -- Satellite: is_covered computes its bound once ----------------------------


class TestIsCoveredSingleBound:
    def test_one_bound_one_search_per_call(self, ba_graph):
        oracle, counter = _counting_oracle(ba_graph, num_landmarks=8)
        mask = oracle._landmark_mask
        free = np.flatnonzero(~mask)
        s, t = int(free[3]), int(free[-5])
        oracle.is_covered(s, t)
        assert counter.calls["upper_bound"] == 1, (
            "is_covered must compute the Eq. 4 bound exactly once"
        )
        assert counter.calls["bounded_distance"] == 1, (
            "is_covered must run the bounded search exactly once"
        )

    def test_trivial_classes_never_search(self, ba_graph):
        oracle, counter = _counting_oracle(ba_graph, num_landmarks=8)
        landmark = int(oracle.highway.landmarks[0])
        non_landmark = int(np.flatnonzero(~oracle._landmark_mask)[0])
        assert oracle.is_covered(5, 5) is True
        assert oracle.is_covered(landmark, non_landmark) is True
        assert oracle.is_covered(landmark, int(oracle.highway.landmarks[1])) is True
        assert counter.calls["upper_bound"] == 0
        assert counter.calls["bounded_distance"] == 0

    def test_verdicts_match_definition(self, ba_graph):
        oracle = HighwayCoverOracle(num_landmarks=8).build(ba_graph)
        pairs = sample_query_pairs(ba_graph, oracle.highway.landmarks, count=48)
        for s, t in pairs:
            s, t = int(s), int(t)
            assert oracle.is_covered(s, t) == (
                oracle.query(s, t) == oracle.upper_bound(s, t)
            )

    def test_figure9_coverage_unchanged(self, ba_graph):
        """Scalar is_covered agrees with the batch coverage statistic."""
        oracle = HighwayCoverOracle(num_landmarks=8).build(ba_graph)
        pairs = sample_query_pairs(ba_graph, oracle.highway.landmarks, count=48)
        _, covered = oracle.query_many(pairs, return_coverage=True)
        looped = np.array(
            [oracle.is_covered(int(s), int(t)) for s, t in pairs], dtype=bool
        )
        assert np.array_equal(covered, looped)


# -- Satellite: steady-state point queries allocate no O(n) scratch -----------


class TestWorkspaceReuse:
    def test_point_queries_reuse_scratch(self, ba_graph, monkeypatch):
        oracle = HighwayCoverOracle(num_landmarks=8).build(ba_graph)
        pairs = sample_query_pairs(ba_graph, oracle.highway.landmarks, count=32)
        warm = [oracle.query(int(s), int(t)) for s, t in pairs]

        allocations = []
        real_alloc = kernel_interface.scratch_alloc

        def counting_alloc(n, dtype):
            allocations.append((n, dtype))
            return real_alloc(n, dtype)

        monkeypatch.setattr(kernel_interface, "scratch_alloc", counting_alloc)
        hot = [oracle.query(int(s), int(t)) for s, t in pairs]
        assert hot == warm
        assert allocations == [], (
            f"steady-state point queries allocated O(n) scratch: {allocations}"
        )

    def test_workspace_is_per_thread_and_per_size(self):
        ws = get_workspace(64)
        assert ws is get_workspace(64)
        assert ws is not get_workspace(128)
        assert ws.side.shape == (64,)
        assert not ws.side.any()
        assert (ws.levels == -1).all()


# -- Satellite: disconnected pairs short-circuit before searching -------------


class TestDisconnectedShortCircuit:
    """Pairs provably disconnected from the labels never search.

    The fixture graph has two BA components plus isolated vertices.
    Landmark placement decides the class: landmarks only in the left
    component leave the right component label-free (its pairs must
    still search, unbounded); one landmark per component makes
    cross-component labels non-empty yet the bound infinite (no
    search needed).
    """

    LEFT = (3, 17)        # vertices of the 40-vertex left component
    RIGHT = (45, 62)      # vertices of the 30-vertex right component
    ISOLATED = (70, 71)   # two of the trailing isolated vertices

    def test_one_empty_label_skips_the_search(self):
        graph = _disconnected_graph()
        oracle, counter = _counting_oracle(graph, num_landmarks=2,
                                           landmarks=[0, 1])
        left, right = self.LEFT[0], self.RIGHT[0]
        assert oracle.query(left, right) == float("inf")
        assert oracle.is_covered(left, right) is True
        assert counter.calls["bounded_distance"] == 0

    def test_infinite_bound_with_nonempty_labels_skips_the_search(self):
        graph = _disconnected_graph()
        # One landmark per component: cross-component labels are both
        # non-empty but no landmark pair connects them.
        oracle, counter = _counting_oracle(graph, num_landmarks=2,
                                           landmarks=[0, 40])
        left, right = self.LEFT[1], self.RIGHT[1]
        assert oracle.upper_bound(left, right) == float("inf")
        assert oracle.query(left, right) == float("inf")
        assert counter.calls["bounded_distance"] == 0

    def test_both_labels_empty_still_searches(self):
        graph = _disconnected_graph()
        oracle, counter = _counting_oracle(graph, num_landmarks=2,
                                           landmarks=[0, 1])
        u, v = self.RIGHT
        truth = bfs_distances(graph, u)[v]
        assert truth != UNREACHED
        assert oracle.query(u, v) == float(truth)
        assert counter.calls["bounded_distance"] == 1
        # Two label-free vertices in *different* components: the search
        # runs (nothing proves disconnection offline) and returns inf.
        iso_a, iso_b = self.ISOLATED
        assert oracle.query(iso_a, iso_b) == float("inf")
        assert counter.calls["bounded_distance"] == 2
        assert oracle.is_covered(iso_a, iso_b) is True

    def test_batch_engine_applies_the_same_short_circuit(self):
        graph = _disconnected_graph()
        oracle, counter = _counting_oracle(graph, num_landmarks=2,
                                           landmarks=[0, 40])
        pairs = np.array(
            [
                [self.LEFT[0], self.RIGHT[0]],   # bound inf, labels non-empty
                [self.LEFT[0], self.LEFT[1]],    # ordinary searched pair
                [self.ISOLATED[0], self.LEFT[0]],  # one empty label
                [self.ISOLATED[0], self.ISOLATED[1]],  # both empty
            ],
            dtype=np.int64,
        )
        distances = oracle.query_many(pairs)
        looped = np.array(
            [oracle.query(int(s), int(t)) for s, t in pairs], dtype=float
        )
        assert np.array_equal(distances, looped)
        assert np.isinf(distances[0]) and np.isinf(distances[2])
        assert np.isfinite(distances[1])
        assert np.isinf(distances[3])

    def test_disconnected_coverage_flags(self):
        graph = _disconnected_graph()
        oracle, _ = _counting_oracle(graph, num_landmarks=2, landmarks=[0, 40])
        pairs = np.array(
            [[self.LEFT[0], self.RIGHT[0]], [self.ISOLATED[0], self.LEFT[0]]],
            dtype=np.int64,
        )
        _, covered = oracle.query_many(pairs, return_coverage=True)
        # inf bound == inf distance: the labels alone decide these pairs.
        assert covered.all()


# -- End-to-end: building through the factory with each backend ---------------


@pytest.mark.parametrize("name", available_kernels())
def test_build_oracle_with_explicit_kernel(name, ba_graph):
    oracle = build_oracle(ba_graph, "hl", num_landmarks=4, kernel=name)
    assert oracle.kernel == name
    assert oracle.kernel_backend.name == name
    reference = build_oracle(ba_graph, "hl", num_landmarks=4, kernel="numpy")
    for s, t in ((0, 250), (7, 133), (42, 42)):
        assert oracle.query(s, t) == reference.query(s, t)
