"""Cross-cutting edge cases that don't belong to a single module."""

import numpy as np
import pytest

from repro.core.construction import build_highway_cover_labelling
from repro.core.query import HighwayCoverOracle
from repro.errors import CompressionError, LandmarkError, VertexError
from repro.graphs.generators import path_graph, star_graph
from repro.graphs.graph import Graph


class TestDegenerateTopologies:
    def test_two_vertex_graph(self):
        g = Graph(2, [(0, 1)])
        oracle = HighwayCoverOracle(num_landmarks=1).build(g)
        assert oracle.query(0, 1) == 1.0
        assert oracle.query(1, 0) == 1.0

    def test_landmark_is_cut_vertex(self):
        """Removing the only articulation point must not break queries —
        the bound through the landmark is exact there (Theorem 4.6 case 1)."""
        g = star_graph(8)
        oracle = HighwayCoverOracle(num_landmarks=1).build(g)  # centre
        for a in range(1, 8):
            for b in range(1, 8):
                expected = 0.0 if a == b else 2.0
                assert oracle.query(a, b) == expected

    def test_path_with_end_landmarks(self):
        g = path_graph(9)
        oracle = HighwayCoverOracle(landmarks=[0, 8]).build(g)
        for s in range(9):
            for t in range(9):
                assert oracle.query(s, t) == float(abs(s - t))

    def test_complete_graph(self):
        n = 8
        g = Graph(n, [(i, j) for i in range(n) for j in range(i + 1, n)])
        oracle = HighwayCoverOracle(num_landmarks=3).build(g)
        for s in range(n):
            for t in range(n):
                assert oracle.query(s, t) == (0.0 if s == t else 1.0)

    def test_all_vertices_are_landmarks(self):
        g = path_graph(5)
        oracle = HighwayCoverOracle(num_landmarks=5).build(g)
        assert oracle.query(0, 4) == 4.0  # pure highway lookup

    def test_isolated_vertex_queries(self):
        g = Graph(4, [(0, 1), (1, 2)])  # vertex 3 isolated
        oracle = HighwayCoverOracle(landmarks=[1]).build(g)
        assert oracle.query(0, 3) == float("inf")
        assert oracle.query(3, 3) == 0.0


class TestValidationPaths:
    def test_query_out_of_range(self, ba_graph):
        oracle = HighwayCoverOracle(num_landmarks=3).build(ba_graph)
        with pytest.raises(VertexError):
            oracle.query(0, ba_graph.num_vertices)
        with pytest.raises(VertexError):
            oracle.query(-1, 0)

    def test_landmark_out_of_range(self, ba_graph):
        with pytest.raises((LandmarkError, VertexError)):
            HighwayCoverOracle(landmarks=[ba_graph.num_vertices + 5]).build(ba_graph)

    def test_duplicate_landmarks_rejected(self, ba_graph):
        with pytest.raises(LandmarkError):
            HighwayCoverOracle(landmarks=[1, 1]).build(ba_graph)

    def test_u8_codec_rejects_many_landmarks(self):
        """Codec validation fires at build time, not at query time."""
        g = Graph(300, [(i, (i + 1) % 300) for i in range(300)])
        oracle = HighwayCoverOracle(num_landmarks=260, codec="u8")
        with pytest.raises(CompressionError):
            oracle.build(g)

    def test_u8_codec_rejects_long_distances(self):
        """Distances over 255 overflow the 8-bit distance field."""
        g = path_graph(300)
        oracle = HighwayCoverOracle(landmarks=[0], codec="u8")
        with pytest.raises(CompressionError):
            oracle.build(g)

    def test_u32_codec_accepts_long_distance_rejection_boundary(self):
        # 8-bit distance field is shared by both codecs (Section 5.2).
        g = path_graph(300)
        oracle = HighwayCoverOracle(landmarks=[0], codec="u32")
        with pytest.raises(CompressionError):
            oracle.build(g)


class TestLargeDistanceRegime:
    def test_long_path_distances_exact_without_codec_limit(self):
        """The raw labelling (no codec) handles distances > 255."""
        g = path_graph(400)
        labelling, highway = build_highway_cover_labelling(g, [0])
        idx, dist = labelling.label_arrays(399)
        assert dist.tolist() == [399]

    def test_grid_corner_to_corner(self):
        from repro.graphs.generators import grid_graph

        g = grid_graph(12, 12)
        oracle = HighwayCoverOracle(num_landmarks=5).build(g)
        assert oracle.query(0, 143) == 22.0
