"""Tests for the utility modules (timing, formatting) and errors."""

import time

import pytest

from repro.errors import ConstructionBudgetExceeded, ReproError, VertexError
from repro.utils.formatting import format_bytes, format_seconds, format_table
from repro.utils.timing import Stopwatch, TimeBudget


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.01)
        first = sw.elapsed
        with sw:
            time.sleep(0.01)
        assert sw.elapsed > first

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()


class TestTimeBudget:
    def test_unlimited(self):
        budget = TimeBudget(None)
        budget.check()  # never raises
        assert not budget.exhausted

    def test_zero_means_unlimited(self):
        assert TimeBudget(0).seconds is None

    def test_exhaustion_raises_dnf(self):
        budget = TimeBudget(1e-9, method="X")
        time.sleep(0.002)
        with pytest.raises(ConstructionBudgetExceeded) as err:
            budget.check()
        assert err.value.method == "X"

    def test_error_hierarchy(self):
        assert issubclass(ConstructionBudgetExceeded, ReproError)
        assert issubclass(VertexError, ReproError)


class TestFormatting:
    def test_format_bytes(self):
        assert format_bytes(512) == "512B"
        assert format_bytes(2048) == "2.0KB"
        assert format_bytes(3 * 1024**2) == "3.0MB"
        assert format_bytes(5 * 1024**3) == "5.0GB"

    def test_format_bytes_negative_raises(self):
        with pytest.raises(ValueError):
            format_bytes(-1)

    def test_format_seconds(self):
        assert format_seconds(2e-6).endswith("us")
        assert format_seconds(5e-3).endswith("ms")
        assert format_seconds(2.5) == "2.50s"

    def test_format_table_alignment(self):
        table = format_table(["col", "x"], [["a", 1], ["bbbb", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("col")
        assert "----" in lines[1]

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])
