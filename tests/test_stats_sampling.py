"""Unit tests for graph statistics (Table 1) and pair sampling (Figure 6)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.generators import barabasi_albert_graph, star_graph
from repro.graphs.graph import Graph
from repro.graphs.sampling import distance_distribution, sample_vertex_pairs
from repro.graphs.stats import compute_stats
from repro.search.bfs import bfs_distance


class TestStats:
    def test_table1_columns(self):
        g = star_graph(5, name="star")
        stats = compute_stats(g, network_type="test")
        assert stats.num_vertices == 5
        assert stats.num_edges == 4
        assert stats.max_degree == 4
        assert stats.avg_degree == pytest.approx(8 / 5)
        assert stats.edge_vertex_ratio == pytest.approx(4 / 5)
        assert stats.size_bytes == 4 * 2 * 8

    def test_empty_graph(self):
        stats = compute_stats(Graph(0, []))
        assert stats.avg_degree == 0.0
        assert stats.max_degree == 0

    def test_as_row_shape(self):
        row = compute_stats(star_graph(5)).as_row()
        assert len(row) == 8


class TestSampling:
    def test_shape_and_range(self):
        g = barabasi_albert_graph(50, 2, seed=1)
        pairs = sample_vertex_pairs(g, 100, seed=2)
        assert pairs.shape == (100, 2)
        assert pairs.min() >= 0
        assert pairs.max() < 50

    def test_distinct_endpoints(self):
        g = barabasi_albert_graph(10, 2, seed=1)
        pairs = sample_vertex_pairs(g, 500, seed=3, distinct=True)
        assert (pairs[:, 0] != pairs[:, 1]).all()

    def test_deterministic(self):
        g = barabasi_albert_graph(50, 2, seed=1)
        p1 = sample_vertex_pairs(g, 30, seed=4)
        p2 = sample_vertex_pairs(g, 30, seed=4)
        assert np.array_equal(p1, p2)

    def test_too_small_graph_raises(self):
        with pytest.raises(GraphError):
            sample_vertex_pairs(Graph(1, []), 5)

    def test_negative_count_raises(self):
        g = barabasi_albert_graph(50, 2, seed=1)
        with pytest.raises(GraphError):
            sample_vertex_pairs(g, -1)


class TestDistanceDistribution:
    def test_fractions_sum_to_one(self):
        g = barabasi_albert_graph(60, 2, seed=5)
        pairs = sample_vertex_pairs(g, 50, seed=6)
        dist = distance_distribution(pairs, lambda s, t: bfs_distance(g, s, t))
        assert sum(dist.values()) == pytest.approx(1.0)
        assert all(d >= 1 for d in dist)  # distinct pairs, connected BA graph

    def test_unreachable_bucketed_as_minus_one(self):
        g = Graph(4, [(0, 1), (2, 3)])
        pairs = np.asarray([[0, 2], [0, 1]])
        dist = distance_distribution(pairs, lambda s, t: bfs_distance(g, s, t))
        assert dist[-1] == pytest.approx(0.5)
        assert dist[1] == pytest.approx(0.5)

    def test_empty_pairs(self):
        assert distance_distribution(np.empty((0, 2)), lambda s, t: 0) == {}
