"""Tests for landmark selection strategies."""

import pytest

from repro.errors import LandmarkError
from repro.graphs.generators import star_graph
from repro.landmarks.selection import STRATEGIES, select_landmarks, top_degree_landmarks


class TestTopDegree:
    def test_star_centre_first(self):
        g = star_graph(10)
        assert top_degree_landmarks(g, 1) == [0]

    def test_ties_broken_by_id(self):
        g = star_graph(10)
        # All leaves have degree 1; ties resolve to smaller ids.
        assert top_degree_landmarks(g, 3) == [0, 1, 2]

    def test_matches_paper_setup(self, ba_graph):
        """Top-k by decreasing degree, k=20 in the paper's experiments."""
        picks = top_degree_landmarks(ba_graph, 20)
        degrees = ba_graph.degrees()
        cutoff = sorted(degrees, reverse=True)[19]
        assert all(degrees[v] >= cutoff for v in picks)
        assert len(set(picks)) == 20


class TestSelectLandmarks:
    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_all_strategies_return_k_distinct_vertices(self, ba_graph, strategy):
        picks = select_landmarks(ba_graph, 7, strategy=strategy, seed=1)
        assert len(picks) == 7
        assert len(set(picks)) == 7
        assert all(0 <= v < ba_graph.num_vertices for v in picks)

    @pytest.mark.parametrize("strategy", ["random", "closeness", "betweenness"])
    def test_seed_determinism(self, ba_graph, strategy):
        a = select_landmarks(ba_graph, 5, strategy=strategy, seed=9)
        b = select_landmarks(ba_graph, 5, strategy=strategy, seed=9)
        assert a == b

    def test_degree_spread_avoids_adjacent_hubs(self, ba_graph):
        picks = select_landmarks(ba_graph, 5, strategy="degree_spread")
        for i, u in enumerate(picks):
            for v in picks[i + 1 :]:
                assert not ba_graph.has_edge(u, v)

    def test_invalid_k(self, ba_graph):
        with pytest.raises(LandmarkError):
            select_landmarks(ba_graph, 0)
        with pytest.raises(LandmarkError):
            select_landmarks(ba_graph, ba_graph.num_vertices + 1)

    def test_unknown_strategy(self, ba_graph):
        with pytest.raises(LandmarkError):
            select_landmarks(ba_graph, 3, strategy="psychic")

    def test_k_equals_n(self):
        g = star_graph(4)
        assert sorted(select_landmarks(g, 4)) == [0, 1, 2, 3]
