"""Tests for the dynamic HL extension (incremental edge insertion)."""

import numpy as np
import pytest

from repro.core.construction import build_highway_cover_labelling
from repro.core.dynamic import DynamicHighwayCoverOracle
from repro.core.query import HighwayCoverOracle
from repro.graphs.generators import path_graph
from repro.graphs.graph import Graph
from repro.graphs.sampling import sample_vertex_pairs
from repro.search.bfs import UNREACHED, bfs_distances


def _fresh_equivalent(oracle):
    """A from-scratch oracle on the same graph and landmark set."""
    return HighwayCoverOracle(
        landmarks=[int(r) for r in oracle.highway.landmarks]
    ).build(oracle.graph)


class TestEntryExtraction:
    def test_round_trip_via_accumulator(self, ba_graph):
        from repro.landmarks.selection import select_landmarks

        landmarks = select_landmarks(ba_graph, 6)
        labelling, _ = build_highway_cover_labelling(ba_graph, landmarks)
        for index in range(6):
            vertices, distances = labelling.entries_of_landmark(index)
            truth = bfs_distances(ba_graph, landmarks[index])
            assert np.array_equal(truth[vertices], distances)


class TestInsertEdge:
    def test_repaired_equals_rebuilt(self, ba_graph):
        """The incremental repair is byte-identical to a fresh build."""
        oracle = DynamicHighwayCoverOracle(num_landmarks=8).build(ba_graph)
        rng = np.random.default_rng(4)
        inserted = 0
        while inserted < 5:
            u, v = (int(x) for x in rng.integers(0, ba_graph.num_vertices, 2))
            if u == v or oracle.graph.has_edge(u, v):
                continue
            oracle.insert_edge(u, v)
            inserted += 1
            fresh = _fresh_equivalent(oracle)
            assert oracle.labelling == fresh.labelling
            assert np.array_equal(oracle.highway.matrix, fresh.highway.matrix)

    def test_queries_exact_after_insertions(self, ws_graph):
        oracle = DynamicHighwayCoverOracle(num_landmarks=6).build(ws_graph)
        n = ws_graph.num_vertices
        oracle.insert_edge(0, n // 2)
        oracle.insert_edge(1, n - 1) if not oracle.graph.has_edge(1, n - 1) else None
        pairs = sample_vertex_pairs(oracle.graph, 120, seed=5)
        for s, t in pairs:
            truth = bfs_distances(oracle.graph, int(s))[int(t)]
            expected = float(truth) if truth != UNREACHED else float("inf")
            assert oracle.query(int(s), int(t)) == expected

    def test_same_level_chord_affects_no_landmark(self):
        # Cycle 0-1-2-3-4-5-0 with landmark 0: vertices 2 and 4 sit at the
        # same BFS level, so the chord (2, 4) changes nothing.
        g = Graph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
        oracle = DynamicHighwayCoverOracle(landmarks=[0]).build(g)
        affected = oracle.insert_edge(2, 4)
        assert affected == []
        assert oracle.query(2, 4) == 1.0  # still exact (search side)

    def test_reconnection_across_components(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        oracle = DynamicHighwayCoverOracle(landmarks=[1]).build(g)
        assert oracle.query(0, 5) == float("inf")
        affected = oracle.insert_edge(2, 3)
        assert affected == [1]
        assert oracle.query(0, 5) == 5.0  # 0-1-2-3-4-5
        fresh = _fresh_equivalent(oracle)
        assert oracle.labelling == fresh.labelling

    def test_existing_edge_rejected(self, ba_graph):
        oracle = DynamicHighwayCoverOracle(num_landmarks=4).build(ba_graph)
        u = 0
        v = int(ba_graph.neighbors(0)[0])
        with pytest.raises(ValueError):
            oracle.insert_edge(u, v)

    def test_self_loop_rejected(self, ba_graph):
        oracle = DynamicHighwayCoverOracle(num_landmarks=4).build(ba_graph)
        with pytest.raises(ValueError):
            oracle.insert_edge(3, 3)


class TestDeleteEdge:
    def test_delete_repairs_and_stays_exact(self):
        g = path_graph(8)
        # Add a chord so deletion does not disconnect.
        g = g.with_edges_added([(0, 7)])
        oracle = DynamicHighwayCoverOracle(num_landmarks=3).build(g)
        landmarks_before = [int(r) for r in oracle.highway.landmarks]
        affected = oracle.delete_edge(0, 7)
        assert isinstance(affected, list)
        assert [int(r) for r in oracle.highway.landmarks] == landmarks_before
        truth = bfs_distances(oracle.graph, 0)
        for t in range(8):
            assert oracle.query(0, t) == float(truth[t])

    def test_deleted_equals_rebuilt(self, ba_graph):
        """Incremental deletion repair is byte-identical to a fresh build."""
        oracle = DynamicHighwayCoverOracle(num_landmarks=8).build(ba_graph)
        rng = np.random.default_rng(9)
        removed = 0
        while removed < 5:
            u = int(rng.integers(0, oracle.graph.num_vertices))
            neighbors = oracle.graph.neighbors(u)
            if len(neighbors) == 0:
                continue
            v = int(neighbors[rng.integers(len(neighbors))])
            affected = oracle.delete_edge(u, v)
            removed += 1
            fresh = _fresh_equivalent(oracle)
            assert oracle.labelling == fresh.labelling, (
                f"delete ({u}, {v}) affected={affected} diverged"
            )
            assert np.array_equal(oracle.highway.matrix, fresh.highway.matrix)

    def test_delete_disconnecting_edge(self):
        g = Graph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
        oracle = DynamicHighwayCoverOracle(landmarks=[1]).build(g)
        affected = oracle.delete_edge(2, 3)
        assert affected == [1]
        assert oracle.query(0, 5) == float("inf")
        assert oracle.highway.distance(1, 1) == 0.0
        fresh = _fresh_equivalent(oracle)
        assert oracle.labelling == fresh.labelling

    def test_delete_then_reinsert_restores_labels(self, ws_graph):
        oracle = DynamicHighwayCoverOracle(num_landmarks=6).build(ws_graph)
        before = oracle.labelling.as_vertex_major()
        u = 0
        v = int(ws_graph.neighbors(0)[0])
        oracle.delete_edge(u, v)
        oracle.insert_edge(u, v)
        assert oracle.labelling == before

    def test_delete_preserves_engine_settings(self, ba_graph):
        oracle = DynamicHighwayCoverOracle(
            num_landmarks=5, engine="looped", chunk_size=2
        ).build(ba_graph)
        v = int(ba_graph.neighbors(0)[0])
        oracle.delete_edge(0, v)
        assert oracle.engine == "looped"
        assert oracle.chunk_size == 2
        fresh = _fresh_equivalent(oracle)
        assert oracle.labelling == fresh.labelling

    def test_delete_missing_edge_rejected(self):
        g = path_graph(5)
        oracle = DynamicHighwayCoverOracle(num_landmarks=2).build(g)
        with pytest.raises(ValueError):
            oracle.delete_edge(0, 4)


class TestStoreBackend:
    def test_dynamic_oracle_defaults_to_landmark_major(self, ba_graph):
        from repro.core.labels import LandmarkMajorLabelStore

        oracle = DynamicHighwayCoverOracle(num_landmarks=4).build(ba_graph)
        assert isinstance(oracle.labelling, LandmarkMajorLabelStore)

    def test_vertex_store_still_repairs(self, ba_graph):
        """An explicit vertex store keeps its layout across repairs."""
        from repro.core.labels import HighwayCoverLabelling

        oracle = DynamicHighwayCoverOracle(num_landmarks=6, store="vertex").build(
            ba_graph
        )
        rng = np.random.default_rng(21)
        inserted = 0
        while inserted < 3:
            u, v = (int(x) for x in rng.integers(0, ba_graph.num_vertices, 2))
            if u == v or oracle.graph.has_edge(u, v):
                continue
            oracle.insert_edge(u, v)
            inserted += 1
            assert isinstance(oracle.labelling, HighwayCoverLabelling)
        fresh = _fresh_equivalent(oracle)
        assert oracle.labelling == fresh.labelling
