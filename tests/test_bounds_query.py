"""Tests for the querying framework: upper bounds and exact queries."""

import numpy as np
import pytest

from repro.core.bounds import upper_bound_distance, upper_bound_with_witness
from repro.core.construction import build_highway_cover_labelling
from repro.core.query import HighwayCoverOracle
from repro.errors import NotBuiltError
from repro.graphs.generators import grid_graph, path_graph
from repro.graphs.graph import Graph
from repro.graphs.sampling import sample_vertex_pairs
from repro.landmarks.selection import select_landmarks
from repro.search.bfs import UNREACHED, bfs_distances


def _build(graph, k):
    landmarks = select_landmarks(graph, k)
    labelling, highway = build_highway_cover_labelling(graph, landmarks)
    return landmarks, labelling, highway


class TestUpperBounds:
    def test_lemma_4_4_admissibility(self, ba_graph):
        """d⊤(s,t) >= d(s,t) for all sampled non-landmark pairs."""
        landmarks, labelling, highway = _build(ba_graph, 8)
        landmark_set = set(landmarks)
        pairs = sample_vertex_pairs(ba_graph, 200, seed=3)
        for s, t in pairs:
            s, t = int(s), int(t)
            if s in landmark_set or t in landmark_set:
                continue
            truth = bfs_distances(ba_graph, s)[t]
            bound = upper_bound_distance(labelling, highway, s, t)
            assert bound >= truth

    def test_bound_tight_through_landmark(self):
        # path 0-1-2-3-4 with landmark 2: bound via 2 is exact for (0, 4).
        g = path_graph(5)
        _, labelling, highway = _build_explicit(g, [2])
        assert upper_bound_distance(labelling, highway, 0, 4) == 4.0

    def test_witness_reports_argmin(self, ba_graph):
        landmarks, labelling, highway = _build(ba_graph, 8)
        landmark_set = set(landmarks)
        pairs = sample_vertex_pairs(ba_graph, 50, seed=4)
        for s, t in pairs:
            s, t = int(s), int(t)
            if s in landmark_set or t in landmark_set:
                continue
            bound, ri, rj = upper_bound_with_witness(labelling, highway, s, t)
            assert bound == upper_bound_distance(labelling, highway, s, t)
            if np.isfinite(bound):
                ls_idx, ls_dist = labelling.label_arrays(s)
                lt_idx, lt_dist = labelling.label_arrays(t)
                ds = float(ls_dist[list(ls_idx).index(ri)])
                dt = float(lt_dist[list(lt_idx).index(rj)])
                assert ds + highway.matrix[ri, rj] + dt == bound

    def test_disconnected_pair_bound_is_inf(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        _, labelling, highway = _build_explicit(g, [1])
        assert upper_bound_distance(labelling, highway, 0, 3) == float("inf")


def _build_explicit(graph, landmarks):
    labelling, highway = build_highway_cover_labelling(graph, landmarks)
    return landmarks, labelling, highway


class TestOracleExactness:
    def test_matches_bfs_on_random_pairs(self, ba_graph):
        oracle = HighwayCoverOracle(num_landmarks=10).build(ba_graph)
        pairs = sample_vertex_pairs(ba_graph, 300, seed=5)
        for s, t in pairs:
            truth = bfs_distances(ba_graph, int(s))[int(t)]
            assert oracle.query(int(s), int(t)) == float(truth)

    def test_all_pairs_small_world(self, ws_graph):
        oracle = HighwayCoverOracle(num_landmarks=6).build(ws_graph)
        n = ws_graph.num_vertices
        for s in range(0, n, 7):
            truth = bfs_distances(ws_graph, s)
            for t in range(0, n, 11):
                expected = float(truth[t]) if truth[t] != UNREACHED else float("inf")
                assert oracle.query(s, t) == expected

    def test_landmark_endpoint_queries(self, ba_graph):
        """Landmark-vertex and landmark-landmark pairs are exact too."""
        oracle = HighwayCoverOracle(num_landmarks=8).build(ba_graph)
        landmarks = list(oracle.highway.landmarks)
        truth0 = bfs_distances(ba_graph, int(landmarks[0]))
        for t in range(0, ba_graph.num_vertices, 13):
            assert oracle.query(int(landmarks[0]), t) == float(truth0[t])
        for r2 in landmarks[1:]:
            assert oracle.query(int(landmarks[0]), int(r2)) == float(truth0[int(r2)])

    def test_query_is_symmetric(self, er_graph):
        oracle = HighwayCoverOracle(num_landmarks=5).build(er_graph)
        pairs = sample_vertex_pairs(er_graph, 100, seed=6)
        for s, t in pairs:
            assert oracle.query(int(s), int(t)) == oracle.query(int(t), int(s))

    def test_same_vertex_zero(self, ba_graph):
        oracle = HighwayCoverOracle(num_landmarks=4).build(ba_graph)
        assert oracle.query(17, 17) == 0.0

    def test_grid_exactness(self):
        """Long-distance regime: bounds are loose, search does the work."""
        g = grid_graph(7, 7)
        oracle = HighwayCoverOracle(num_landmarks=3).build(g)
        truth = {s: bfs_distances(g, s) for s in range(0, 49, 5)}
        for s, dist in truth.items():
            for t in range(0, 49, 6):
                assert oracle.query(s, t) == float(dist[t])

    def test_disconnected_inf(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        oracle = HighwayCoverOracle(num_landmarks=2).build(g)
        assert oracle.query(0, 5) == float("inf")

    def test_unbuilt_raises(self):
        with pytest.raises(NotBuiltError):
            HighwayCoverOracle().query(0, 1)

    def test_explicit_landmarks_used(self, example_graph):
        oracle = HighwayCoverOracle(landmarks=[1, 5, 9]).build(example_graph)
        assert list(oracle.highway.landmarks) == [1, 5, 9]

    def test_upper_bound_never_below_query(self, ba_graph):
        oracle = HighwayCoverOracle(num_landmarks=8).build(ba_graph)
        pairs = sample_vertex_pairs(ba_graph, 150, seed=7)
        for s, t in pairs:
            assert oracle.upper_bound(int(s), int(t)) >= oracle.query(int(s), int(t))

    def test_coverage_flag_consistent(self, ba_graph):
        oracle = HighwayCoverOracle(num_landmarks=8).build(ba_graph)
        pairs = sample_vertex_pairs(ba_graph, 100, seed=8)
        for s, t in pairs:
            covered = oracle.is_covered(int(s), int(t))
            assert covered == (
                oracle.upper_bound(int(s), int(t)) == oracle.query(int(s), int(t))
            )

    def test_construction_seconds_recorded(self, ws_graph):
        oracle = HighwayCoverOracle(num_landmarks=4).build(ws_graph)
        assert oracle.construction_seconds > 0
