"""Tests for HL-P: the parallel builder must reproduce the sequential labels."""

import numpy as np
import pytest

from repro.core.construction import build_highway_cover_labelling
from repro.core.parallel import build_highway_cover_labelling_parallel
from repro.errors import ConstructionBudgetExceeded, LandmarkError
from repro.landmarks.selection import select_landmarks


class TestParallelEquivalence:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_identical_to_sequential(self, ba_graph, backend):
        """Lemma 3.11 in executable form: HL-P output == HL output."""
        landmarks = select_landmarks(ba_graph, 8)
        seq_labels, seq_highway = build_highway_cover_labelling(ba_graph, landmarks)
        par_labels, par_highway = build_highway_cover_labelling_parallel(
            ba_graph, landmarks, backend=backend, workers=4
        )
        assert seq_labels == par_labels
        assert np.array_equal(seq_highway.matrix, par_highway.matrix)

    def test_single_worker(self, ws_graph):
        landmarks = select_landmarks(ws_graph, 5)
        seq, _ = build_highway_cover_labelling(ws_graph, landmarks)
        par, _ = build_highway_cover_labelling_parallel(ws_graph, landmarks, workers=1)
        assert seq == par

    def test_more_workers_than_landmarks(self, ws_graph):
        landmarks = select_landmarks(ws_graph, 2)
        seq, _ = build_highway_cover_labelling(ws_graph, landmarks)
        par, _ = build_highway_cover_labelling_parallel(ws_graph, landmarks, workers=16)
        assert seq == par

    def test_empty_landmarks_rejected(self, ws_graph):
        with pytest.raises(LandmarkError):
            build_highway_cover_labelling_parallel(ws_graph, [])

    def test_unknown_backend_rejected(self, ws_graph):
        with pytest.raises(ValueError):
            build_highway_cover_labelling_parallel(ws_graph, [0], backend="gpu")

    def test_budget_enforced(self, ba_graph):
        landmarks = select_landmarks(ba_graph, 10)
        with pytest.raises(ConstructionBudgetExceeded):
            build_highway_cover_labelling_parallel(
                ba_graph, landmarks, budget_s=1e-9
            )
