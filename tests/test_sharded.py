"""Tests for the multi-process sharded serving tier.

The bars this suite enforces:

* **Byte-identity.** Point and bulk answers from
  :class:`~repro.serving.ShardedDistanceService` equal the
  single-process oracle exactly — including ``inf`` for disconnected
  pairs — and ``query_many`` reassembles sub-batches in submission
  order.
* **Snapshot re-map after dynamic updates.** After ``insert_edge`` /
  ``delete_edge`` returns, every worker answers on the updated graph
  (byte-identical to a fresh build), in both ``remap`` and ``repair``
  propagation modes, and stale cache entries are gone.
* **Cache correctness.** The LRU bound, version invalidation, and the
  stale-put rejection that keeps pre-update distances from resurfacing
  — including under concurrent mixed read/write load.
* **Integration.** The sharded service slots behind the factories
  (``shards=N``) and the thread-coalescing ``DistanceService``.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.api import build_oracle, capabilities_of, make_oracle, open_oracle
from repro.api.protocol import Capability
from repro.errors import (
    ReproError,
    ServiceClosedError,
    VertexError,
)
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.graph import Graph
from repro.graphs.sampling import sample_vertex_pairs
from repro.serving import DistanceService, QueryCache, ShardedDistanceService
from repro.serving.sharded import route_of


@pytest.fixture(scope="module")
def sharded_graph() -> Graph:
    return barabasi_albert_graph(500, 3, seed=23)


@pytest.fixture(scope="module")
def reference_oracle(sharded_graph):
    return build_oracle(sharded_graph, "hl", num_landmarks=8)


@pytest.fixture(scope="module")
def snapshot_path(tmp_path_factory, reference_oracle):
    path = tmp_path_factory.mktemp("sharded") / "index.hl"
    reference_oracle.save(path)
    return path


@pytest.fixture()
def sharded(sharded_graph, snapshot_path):
    service = ShardedDistanceService.from_snapshot(
        sharded_graph, snapshot_path, shards=2
    )
    yield service
    service.close()


class TestQueryCache:
    def test_put_get_and_symmetry(self):
        cache = QueryCache(capacity=4)
        assert cache.put(3, 5, 2.0, cache.version)
        assert cache.get(3, 5) == 2.0
        assert cache.get(5, 3) == 2.0  # normalized (undirected) key

    def test_miss_returns_none_and_counts(self):
        cache = QueryCache(capacity=4)
        assert cache.get(1, 2) is None
        assert cache.stats()["misses"] == 1

    def test_lru_eviction_order(self):
        cache = QueryCache(capacity=2)
        cache.put(0, 1, 1.0, 0)
        cache.put(2, 3, 2.0, 0)
        cache.get(0, 1)  # refresh (0,1); (2,3) is now LRU
        cache.put(4, 5, 3.0, 0)
        assert cache.get(2, 3) is None
        assert cache.get(0, 1) == 1.0
        assert cache.get(4, 5) == 3.0
        assert cache.stats()["evictions"] == 1
        assert len(cache) == 2

    def test_invalidate_drops_entries_and_bumps_version(self):
        cache = QueryCache(capacity=4)
        cache.put(0, 1, 1.0, 0)
        cache.invalidate()
        assert cache.get(0, 1) is None
        assert cache.version == 1

    def test_stale_put_rejected(self):
        cache = QueryCache(capacity=4)
        stamp = cache.version
        cache.invalidate()  # an update completed while "in flight"
        assert not cache.put(0, 1, 1.0, stamp)
        assert cache.get(0, 1) is None
        assert cache.stats()["stale_rejects"] == 1

    def test_zero_capacity_disables(self):
        cache = QueryCache(capacity=0)
        assert not cache.put(0, 1, 1.0, 0)
        assert cache.get(0, 1) is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            QueryCache(capacity=-1)


class TestRouting:
    def test_route_is_deterministic_and_symmetric(self):
        for s, t in [(0, 1), (7, 3), (100, 100), (5, 999)]:
            assert route_of(s, t, 4) == route_of(t, s, 4)
            assert 0 <= route_of(s, t, 4) < 4

    def test_routes_spread_over_workers(self):
        routes = {route_of(s, t, 4) for s in range(20) for t in range(20)}
        assert routes == {0, 1, 2, 3}


class TestShardedExactness:
    def test_bulk_byte_identical_and_ordered(
        self, sharded, sharded_graph, reference_oracle
    ):
        pairs = sample_vertex_pairs(sharded_graph, 400, seed=5)
        expected = reference_oracle.query_many(pairs)
        got = sharded.query_many(pairs)
        assert got.dtype == expected.dtype
        assert np.array_equal(got, expected)

    def test_point_queries_byte_identical(
        self, sharded, sharded_graph, reference_oracle
    ):
        pairs = sample_vertex_pairs(sharded_graph, 64, seed=6)
        for s, t in pairs:
            assert sharded.query(int(s), int(t)) == reference_oracle.query(
                int(s), int(t)
            )

    def test_cache_serves_repeats(self, sharded):
        first = sharded.query(3, 400)
        hits_before = sharded.stats()["cache"]["hits"]
        assert sharded.query(3, 400) == first
        assert sharded.query(400, 3) == first  # symmetric key
        assert sharded.stats()["cache"]["hits"] == hits_before + 2

    def test_disconnected_pairs_serve_inf(self, tmp_path):
        graph = Graph(6, [(0, 1), (1, 2), (3, 4)], name="split")
        oracle = build_oracle(graph, "hl", num_landmarks=2)
        path = tmp_path / "split.hl"
        oracle.save(path)
        with ShardedDistanceService.from_snapshot(graph, path, shards=2) as svc:
            assert svc.query(0, 3) == float("inf")
            assert svc.query(0, 2) == 2.0
            assert np.array_equal(
                svc.query_many([(0, 3), (3, 4), (5, 0)]),
                np.array([np.inf, 1.0, np.inf]),
            )

    def test_empty_batch(self, sharded):
        assert len(sharded.query_many(np.empty((0, 2), dtype=np.int64))) == 0

    def test_pipelined_futures(self, sharded, reference_oracle, sharded_graph):
        pairs = sample_vertex_pairs(sharded_graph, 128, seed=9)
        futures = [sharded.query_async(int(s), int(t)) for s, t in pairs]
        got = [f.result() for f in futures]
        expected = [reference_oracle.query(int(s), int(t)) for s, t in pairs]
        assert got == expected
        stats = sharded.stats()
        # Pipelined submission must coalesce: fewer worker round trips
        # than queries.
        assert stats["batches"] < len(pairs)
        assert stats["batch_occupancy"] > 1.0


class TestThreadedWorkers:
    """N processes × M threads compose: every worker runs its own
    :class:`~repro.serving.QueryExecutor` over the no-GIL kernels."""

    def test_two_by_two_compose_byte_identical(
        self, sharded_graph, snapshot_path, reference_oracle
    ):
        pairs = sample_vertex_pairs(sharded_graph, 600, seed=61)
        expected = reference_oracle.query_many(pairs)
        with ShardedDistanceService.from_snapshot(
            sharded_graph, snapshot_path, shards=2, threads=2
        ) as svc:
            got = svc.query_many(pairs)
            for s, t in pairs[:16]:
                assert svc.query(int(s), int(t)) == reference_oracle.query(
                    int(s), int(t)
                )
            stats = svc.stats()
        assert got.dtype == expected.dtype
        assert np.array_equal(got, expected)
        assert stats["threads"] == 2

    def test_stats_report_per_shard_executors(
        self, sharded_graph, snapshot_path
    ):
        pairs = sample_vertex_pairs(sharded_graph, 512, seed=67)
        with ShardedDistanceService.from_snapshot(
            sharded_graph, snapshot_path, shards=2, threads=2
        ) as svc:
            svc.query_many(pairs)
            per_shard = svc.stats()["executor_per_shard"]
        assert len(per_shard) == 2
        for executor_stats in per_shard:
            assert executor_stats is not None
            assert executor_stats["threads"] == 2
            assert len(executor_stats["per_thread"]) <= 2
            assert (
                executor_stats["parallel_batches"]
                + executor_stats["sequential_batches"]
            ) >= 1

    def test_invalid_threads_rejected(self, sharded_graph, snapshot_path):
        with pytest.raises(ValueError, match="at least 1"):
            ShardedDistanceService.from_snapshot(
                sharded_graph, snapshot_path, shards=2, threads=0
            )

    def test_closed_service_stats_degrade_gracefully(
        self, sharded_graph, snapshot_path
    ):
        svc = ShardedDistanceService.from_snapshot(
            sharded_graph, snapshot_path, shards=2, threads=2
        )
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.query(0, 1)


@pytest.mark.parametrize("update_mode", ["remap", "repair"])
class TestDynamicUpdatePropagation:
    def test_workers_see_post_update_distances(
        self, sharded_graph, snapshot_path, update_mode
    ):
        u, v = 0, 499
        assert not sharded_graph.has_edge(u, v)
        with ShardedDistanceService.from_snapshot(
            sharded_graph, snapshot_path, shards=2, update_mode=update_mode
        ) as svc:
            before = svc.query(u, v)
            assert before > 1.0
            affected = svc.insert_edge(u, v)
            assert affected  # endpoints at different levels somewhere
            assert svc.version() == 1
            # The cached pre-update distance must be gone.
            assert svc.query(u, v) == 1.0
            # Every worker answers on the updated graph, byte-identical
            # to a fresh build (bulk batches touch both workers).
            fresh = build_oracle(
                sharded_graph.with_edges_added([(u, v)]), "hl", num_landmarks=8
            )
            pairs = sample_vertex_pairs(sharded_graph, 300, seed=11)
            assert np.array_equal(svc.query_many(pairs), fresh.query_many(pairs))
            # And each point route (both shards) agrees too.
            for s, t in pairs[:32]:
                assert svc.query(int(s), int(t)) == fresh.query(int(s), int(t))

    def test_delete_edge_round_trip(
        self, sharded_graph, snapshot_path, reference_oracle, update_mode
    ):
        u, v = 0, 499
        with ShardedDistanceService.from_snapshot(
            sharded_graph, snapshot_path, shards=2, update_mode=update_mode
        ) as svc:
            svc.insert_edge(u, v)
            svc.delete_edge(u, v)
            assert svc.version() == 2
            pairs = sample_vertex_pairs(sharded_graph, 200, seed=12)
            assert np.array_equal(
                svc.query_many(pairs), reference_oracle.query_many(pairs)
            )

    def test_stale_cache_entries_evicted(
        self, sharded_graph, snapshot_path, update_mode
    ):
        u, v = 1, 498
        with ShardedDistanceService.from_snapshot(
            sharded_graph, snapshot_path, shards=2, update_mode=update_mode
        ) as svc:
            primed = [(int(s), int(t)) for s, t in
                      sample_vertex_pairs(sharded_graph, 50, seed=13)]
            for s, t in primed:
                svc.query(s, t)
            assert len(svc.cache) > 0
            svc.insert_edge(u, v)
            assert len(svc.cache) == 0
            assert svc.cache.stats()["invalidations"] == 1


class TestCacheUnderConcurrentLoad:
    def test_mixed_read_write_never_leaves_stale_entries(
        self, sharded_graph, snapshot_path
    ):
        """Readers hammer the cache while a writer inserts and deletes
        edges; afterwards every surviving cache entry must equal the
        final graph's exact distance (no pre-update value survives)."""
        rng = np.random.default_rng(7)
        pairs = sample_vertex_pairs(sharded_graph, 600, seed=17)
        with ShardedDistanceService.from_snapshot(
            sharded_graph, snapshot_path, shards=2, cache_size=512
        ) as svc:
            errors: list = []
            stop = threading.Event()

            def reader() -> None:
                try:
                    while not stop.is_set():
                        i = int(rng.integers(len(pairs)))
                        svc.query(int(pairs[i, 0]), int(pairs[i, 1]))
                except BaseException as exc:  # surfaced after join
                    errors.append(exc)

            readers = [threading.Thread(target=reader) for _ in range(4)]
            for r in readers:
                r.start()
            updates = [
                (u, v)
                for u, v in [(2, 497), (3, 496), (4, 495), (5, 494), (6, 493)]
                if not sharded_graph.has_edge(u, v)
            ][:3]
            assert len(updates) == 3
            for u, v in updates:
                svc.insert_edge(u, v)
            svc.delete_edge(*updates[0])
            stop.set()
            for r in readers:
                r.join()
            assert not errors
            final_graph = sharded_graph.with_edges_added(updates[1:])
            fresh = build_oracle(final_graph, "hl", num_landmarks=8)
            for (s, t), value in svc.cache.items().items():
                assert value == fresh.query(s, t)
            # And the serving path agrees with the fresh build everywhere.
            check = sample_vertex_pairs(sharded_graph, 200, seed=18)
            assert np.array_equal(
                svc.query_many(check), fresh.query_many(check)
            )


class TestFactoryAndFacadeIntegration:
    def test_make_oracle_shards_returns_unbuilt_service(self):
        svc = make_oracle("hl", shards=2, num_landmarks=6)
        assert isinstance(svc, ShardedDistanceService)
        with pytest.raises(ReproError):
            svc.query(0, 1)  # not built yet

    def test_make_oracle_shards_one_is_plain(self):
        oracle = make_oracle("hl", shards=1, num_landmarks=6)
        assert not isinstance(oracle, ShardedDistanceService)

    def test_open_oracle_with_shards_and_index(
        self, sharded_graph, snapshot_path, reference_oracle
    ):
        svc = open_oracle(sharded_graph, index=snapshot_path, shards=2)
        try:
            assert isinstance(svc, ShardedDistanceService)
            assert svc.query(5, 250) == reference_oracle.query(5, 250)
            assert capabilities_of(svc) == frozenset(
                {
                    Capability.BATCH,
                    Capability.DYNAMIC,
                    Capability.SNAPSHOT,
                    Capability.PATHS,
                }
            )
        finally:
            svc.close()

    def test_open_oracle_forwards_explicit_mmap_false(
        self, sharded_graph, snapshot_path, reference_oracle
    ):
        # Workers read the snapshot into RAM instead of mapping it;
        # answers are unchanged.
        svc = open_oracle(
            sharded_graph, index=snapshot_path, shards=2, mmap=False
        )
        try:
            assert svc.mmap is False
            assert svc.query(5, 250) == reference_oracle.query(5, 250)
        finally:
            svc.close()

    def test_non_snapshot_method_rejected(self):
        with pytest.raises(ValueError, match="snapshot"):
            make_oracle("pll", shards=2)

    def test_nonpositive_shards_rejected_at_the_factories(
        self, sharded_graph
    ):
        # Only None/1 mean single-process; 0 or negative (e.g. a
        # computed worker count that bottomed out) must raise, exactly
        # as direct ShardedDistanceService construction does.
        for bad in (0, -2):
            with pytest.raises(ValueError, match="at least 1"):
                make_oracle("hl", shards=bad)
            with pytest.raises(ValueError, match="at least 1"):
                open_oracle(sharded_graph, shards=bad)

    def test_distance_service_hosts_sharded_backend(
        self, sharded_graph, snapshot_path, reference_oracle
    ):
        pairs = sample_vertex_pairs(sharded_graph, 100, seed=21)
        expected = reference_oracle.query_many(pairs)
        with ShardedDistanceService.from_snapshot(
            sharded_graph, snapshot_path, shards=2
        ) as backend:
            with DistanceService(max_wait_ms=0.5) as service:
                service.register("g", backend)
                got = np.array(
                    [service.query("g", int(s), int(t)) for s, t in pairs]
                )
                service.insert_edge("g", 6, 490)
                after = service.query("g", 6, 490)
        assert np.array_equal(got, expected)
        assert after == 1.0

    def test_facade_close_shuts_down_owned_sharded_backend(
        self, sharded_graph, snapshot_path
    ):
        with DistanceService(max_wait_ms=0.5) as service:
            service.open(
                "g", sharded_graph, index=snapshot_path, shards=2
            )
            backend = service.oracle("g")
            assert isinstance(backend, ShardedDistanceService)
            assert service.query("g", 3, 250) == backend.query(3, 250)
            processes = [shard.process for shard in backend._workers]
        # Exiting the facade must also close the service-owned sharded
        # backend: workers reaped, further use refused.
        for process in processes:
            process.join(timeout=10)
            assert not process.is_alive()
        with pytest.raises(ServiceClosedError):
            backend.query(3, 250)

    def test_open_register_failure_closes_the_opened_oracle(
        self, sharded_graph, snapshot_path, monkeypatch
    ):
        """If register rejects (duplicate name), the oracle that open
        just built must be closed, not leaked with live workers."""
        import repro.api.factory as factory

        opened = []
        real_open = factory.open_oracle

        def spy(source, **kw):
            oracle = real_open(source, **kw)
            opened.append(oracle)
            return oracle

        monkeypatch.setattr(factory, "open_oracle", spy)
        with DistanceService(max_wait_ms=0.5) as service:
            service.open("g", sharded_graph, index=snapshot_path, shards=2)
            with pytest.raises(ReproError, match="already registered"):
                service.open(
                    "g", sharded_graph, index=snapshot_path, shards=2
                )
            assert len(opened) == 2
            doomed = opened[1]
            for shard in doomed._workers:
                shard.process.join(timeout=10)
                assert not shard.process.is_alive()
            with pytest.raises(ServiceClosedError):
                doomed.query(0, 1)
            # The survivor keeps serving.
            assert service.query("g", 3, 250) == opened[0].query(3, 250)

    def test_snapshot_and_paths_capabilities(
        self, sharded, reference_oracle, tmp_path
    ):
        out = tmp_path / "resaved.hl"
        assert sharded.save(out) > 0
        assert sharded.size_bytes() == reference_oracle.size_bytes()
        assert sharded.average_label_size() == pytest.approx(
            reference_oracle.average_label_size()
        )
        path = sharded.shortest_path(3, 250)
        assert path is not None
        assert len(path) - 1 == sharded.query(3, 250)


class TestCLI:
    def test_shard_bench_command(self, capsys):
        from repro.cli import main

        assert main(
            [
                "shard-bench",
                "--n", "400",
                "--pairs", "120",
                "--shards", "2",
                "--batches", "2",
                "-k", "6",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "sharded x2" in out
        assert "match single-process query_many" in out

    def test_serve_bench_with_shards(self, capsys):
        from repro.cli import main

        assert main(
            [
                "serve-bench",
                "--n", "400",
                "--queries", "120",
                "--threads", "4",
                "--shards", "2",
                "-k", "6",
            ]
        ) == 0
        assert "match looped oracle.query" in capsys.readouterr().out


class TestErrorPaths:
    def test_bad_vertex_raises_in_caller(self, sharded):
        with pytest.raises(VertexError):
            sharded.query(0, 10_000)

    def test_closed_service_raises(self, sharded_graph, snapshot_path):
        svc = ShardedDistanceService.from_snapshot(
            sharded_graph, snapshot_path, shards=2
        )
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.query(0, 1)
        svc.close()  # idempotent

    def test_unbuilt_rejects_queries(self):
        svc = ShardedDistanceService(2, num_landmarks=4)
        with pytest.raises(ReproError):
            svc.query_many([(0, 1)])

    def test_double_build_rejected(self, sharded, sharded_graph):
        with pytest.raises(ReproError):
            sharded.build(sharded_graph)

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            ShardedDistanceService(0)
        with pytest.raises(ValueError):
            ShardedDistanceService(2, update_mode="teleport")

    def test_failed_update_broadcast_poisons_shard(
        self, sharded_graph, snapshot_path
    ):
        """A shard that misses an update must fail loudly afterwards,
        never silently serve (and re-cache) pre-update distances."""
        from repro.errors import ShardError

        svc = ShardedDistanceService.from_snapshot(
            sharded_graph, snapshot_path, shards=2
        )
        try:
            victim = svc._workers[0]
            victim.process.terminate()
            victim.process.join(timeout=10)
            with pytest.raises(ShardError):
                svc.insert_edge(10, 480)
            # The dead shard is poisoned: work routed to it raises
            # instead of returning stale answers...
            with pytest.raises(ShardError):
                svc.query_many(
                    sample_vertex_pairs(sharded_graph, 50, seed=30)
                )
            # ...and the cache was still flushed (version bumped), so no
            # pre-update entry survives either.
            assert len(svc.cache) == 0
            assert svc.version() == 1
        finally:
            svc.close()

    def test_broadcast_reaches_shards_past_a_poisoned_one(
        self, sharded_graph, snapshot_path
    ):
        """A submit failure on an early shard must not abort the update
        broadcast: every later shard still receives and applies the
        update, so no live shard is left silently serving pre-update
        distances."""
        from repro.errors import ShardError

        svc = ShardedDistanceService.from_snapshot(
            sharded_graph, snapshot_path, shards=2
        )
        try:
            # An absent edge whose point route is shard 1, so shard 1's
            # post-update answer is directly observable.
            u, v = next(
                (s, t)
                for s in range(50)
                for t in range(450, 500)
                if not sharded_graph.has_edge(s, t)
                and route_of(s, t, 2) == 1
            )
            assert svc.query(u, v) > 1.0
            svc._workers[0].poison()  # shard 0 rejects the broadcast
            with pytest.raises(ShardError):
                svc.insert_edge(u, v)
            assert svc.version() == 1
            # Shard 1 was still told: the hash-routed point query (the
            # cache was flushed) answers on the post-insert graph.
            assert svc.query(u, v) == 1.0
            # And the snapshot bookkeeping followed the partial
            # failure: the acked shards re-mapped to the published
            # generation, so stats() must name it, not the old file.
            assert svc.stats()["snapshot"].split("/")[-1].startswith("gen-")
            # While anything routed to the poisoned shard fails loudly.
            s0, t0 = next(
                (s, t)
                for s in range(50)
                for t in range(450, 500)
                if route_of(s, t, 2) == 0
            )
            with pytest.raises(ShardError):
                svc.query(s0, t0)
        finally:
            svc.close()

    def test_failed_build_releases_spool_and_workers(
        self, sharded_graph, tmp_path
    ):
        """A build that dies (here: unreadable index) must close what it
        already opened — no lingering spool directory or workers."""
        svc = ShardedDistanceService(2, index=tmp_path / "missing.hl")
        with pytest.raises((OSError, ReproError)):
            svc.build(sharded_graph)
        assert svc._workers == []
        assert not svc._spool.directory.exists()
        with pytest.raises(ReproError):
            svc.build(sharded_graph)  # closed, not half-started

    def test_constructor_options_with_index_rejected(
        self, sharded_graph, snapshot_path
    ):
        """Serving an existing snapshot never consults the method
        constructor — passing its options is an error, exactly as on
        the single-process open_oracle path."""
        with pytest.raises(ValueError, match="ignored"):
            ShardedDistanceService(2, index=snapshot_path, num_landmarks=4)
        with pytest.raises(ValueError, match="ignored"):
            open_oracle(
                sharded_graph, index=snapshot_path, shards=2, num_landmarks=4
            )

    def test_insert_existing_edge_fails_cleanly(self, sharded, sharded_graph):
        u, v = next(iter(sharded_graph.edges()))
        with pytest.raises(ValueError, match="already exists"):
            sharded.insert_edge(u, v)
        # The failed update must not have bumped the version or
        # poisoned the workers.
        assert sharded.version() == 0
        assert sharded.query(u, v) == 1.0


class TestStatsTimeout:
    """Satellite: the stats IPC verb is timeout-bounded (one hung shard
    degrades the report to partial, naming the stale shard — it can
    never block ``stats()`` indefinitely)."""

    @staticmethod
    def _delay_stats(shard, delay_s: float):
        """Wrap ``shard._roundtrip`` so its ``stats`` round trip hangs."""
        import time as _time

        original = shard._roundtrip

        def slow(payload):
            if payload and payload[0] == "stats":
                _time.sleep(delay_s)
            return original(payload)

        shard._roundtrip = slow
        return original

    def test_hung_shard_degrades_to_partial_report(self, sharded):
        import time as _time

        baseline = sharded.stats()
        assert baseline["stale_shards"] == []
        assert all(e is not None for e in baseline["executor_per_shard"])

        original = self._delay_stats(sharded._workers[0], delay_s=1.5)
        try:
            t0 = _time.perf_counter()
            report = sharded.stats(timeout_s=0.2)
            elapsed = _time.perf_counter() - t0
            # Bounded: the hung shard cost at most ~timeout_s, not 1.5s.
            assert elapsed < 1.0
            # Partial, and the stale shard is named.
            assert report["stale_shards"] == [0]
            assert report["executor_per_shard"][0] is None
            assert report["executor_per_shard"][1] is not None
            # Locally held counters are still served in full.
            assert report["shards"] == 2
            assert "cache" in report and "per_shard" in report
        finally:
            sharded._workers[0]._roundtrip = original

        # The shard was slow, not dead: once it drains, a later stats()
        # call is complete again and queries still work.
        _time.sleep(1.6)
        recovered = sharded.stats()
        assert recovered["stale_shards"] == []
        assert all(e is not None for e in recovered["executor_per_shard"])

    def test_shared_deadline_across_multiple_hung_shards(self, sharded):
        import time as _time

        originals = [
            self._delay_stats(shard, delay_s=1.5)
            for shard in sharded._workers
        ]
        try:
            t0 = _time.perf_counter()
            report = sharded.stats(timeout_s=0.2)
            elapsed = _time.perf_counter() - t0
            # One shared deadline: two hung shards still cost ~timeout_s
            # total, not timeout_s each.
            assert elapsed < 1.0
            assert report["stale_shards"] == [0, 1]
            assert report["executor_per_shard"] == [None, None]
        finally:
            for shard, original in zip(sharded._workers, originals):
                shard._roundtrip = original
        _time.sleep(1.7)
        assert sharded.stats()["stale_shards"] == []
