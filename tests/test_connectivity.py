"""Unit tests for connected components."""

from repro.graphs.connectivity import (
    connected_components,
    is_connected,
    largest_connected_component,
)
from repro.graphs.graph import Graph


class TestConnectedComponents:
    def test_single_component(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert connected_components(g).tolist() == [0, 0, 0, 0]
        assert is_connected(g)

    def test_two_components(self):
        g = Graph(5, [(0, 1), (2, 3)])
        comp = connected_components(g)
        assert comp[0] == comp[1]
        assert comp[2] == comp[3]
        assert comp[0] != comp[2]
        assert comp[4] not in (comp[0], comp[2])
        assert not is_connected(g)

    def test_empty_graph_is_connected(self):
        assert is_connected(Graph(0, []))

    def test_isolated_vertices_each_own_component(self):
        g = Graph(3, [])
        assert sorted(connected_components(g).tolist()) == [0, 1, 2]


class TestLargestComponent:
    def test_extracts_biggest(self):
        g = Graph(7, [(0, 1), (1, 2), (2, 3), (5, 6)])
        lcc, old_ids = largest_connected_component(g)
        assert lcc.num_vertices == 4
        assert lcc.num_edges == 3
        assert old_ids.tolist() == [0, 1, 2, 3]

    def test_preserves_name(self):
        g = Graph(4, [(0, 1)], name="named")
        lcc, _ = largest_connected_component(g)
        assert lcc.name == "named"

    def test_already_connected_unchanged_size(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        lcc, _ = largest_connected_component(g)
        assert lcc.num_vertices == 4
        assert is_connected(lcc)
