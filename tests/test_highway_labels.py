"""Unit tests for the Highway structure and the label store."""

import numpy as np
import pytest

from repro.core.highway import Highway
from repro.core.labels import HighwayCoverLabelling, LabelAccumulator
from repro.errors import LandmarkError, ReproError


class TestHighway:
    def test_basic_lookup(self):
        matrix = np.asarray([[0.0, 2.0], [2.0, 0.0]])
        h = Highway([4, 9], matrix)
        assert h.num_landmarks == 2
        assert h.distance(4, 9) == 2.0
        assert h.distance(9, 4) == 2.0
        assert h.distance(4, 4) == 0.0

    def test_unknown_starts_inf(self):
        h = Highway([1, 2, 3])
        assert h.distance(1, 2) == float("inf")
        assert h.distance(2, 2) == 0.0

    def test_set_row_symmetric(self):
        h = Highway([1, 2, 3])
        h.set_row(2, np.asarray([4.0, 0.0, 7.0]))
        assert h.distance(1, 2) == 4.0
        assert h.distance(2, 3) == 7.0
        assert h.distance(3, 2) == 7.0

    def test_landmark_mask(self):
        h = Highway([0, 3])
        mask = h.landmark_mask(5)
        assert mask.tolist() == [True, False, False, True, False]

    def test_mask_rejects_out_of_range(self):
        h = Highway([0, 10])
        with pytest.raises(LandmarkError):
            h.landmark_mask(5)

    def test_is_landmark(self):
        h = Highway([2, 5])
        assert h.is_landmark(2)
        assert not h.is_landmark(3)

    def test_non_landmark_lookup_raises(self):
        h = Highway([1, 2])
        with pytest.raises(LandmarkError):
            h.distance(1, 7)

    def test_validation(self):
        with pytest.raises(LandmarkError):
            Highway([])
        with pytest.raises(LandmarkError):
            Highway([1, 1])
        with pytest.raises(LandmarkError):
            Highway([-1])
        with pytest.raises(LandmarkError):
            Highway([1, 2], np.zeros((3, 3)))
        with pytest.raises(LandmarkError):
            Highway([1, 2], np.asarray([[0.0, 1.0], [2.0, 0.0]]))  # asymmetric
        with pytest.raises(LandmarkError):
            Highway([1, 2], np.asarray([[1.0, 2.0], [2.0, 0.0]]))  # bad diagonal

    def test_size_bytes(self):
        assert Highway([1, 2, 3]).size_bytes() == 9


class TestLabelAccumulator:
    def test_transpose_to_per_vertex(self):
        acc = LabelAccumulator(num_vertices=4, num_landmarks=2)
        acc.add_landmark_result(0, np.asarray([1, 2]), np.asarray([1, 2]))
        acc.add_landmark_result(1, np.asarray([2, 3]), np.asarray([5, 1]))
        labelling = acc.freeze()
        assert labelling.size() == 4
        assert list(labelling.label(1).entries()) == [(0, 1)]
        assert list(labelling.label(2).entries()) == [(0, 2), (1, 5)]
        assert list(labelling.label(3).entries()) == [(1, 1)]
        assert labelling.label_size(0) == 0

    def test_entries_sorted_by_landmark_regardless_of_fill_order(self):
        acc = LabelAccumulator(num_vertices=2, num_landmarks=3)
        acc.add_landmark_result(2, np.asarray([0]), np.asarray([3]))
        acc.add_landmark_result(0, np.asarray([0]), np.asarray([1]))
        acc.add_landmark_result(1, np.asarray([0]), np.asarray([2]))
        labelling = acc.freeze()
        assert list(labelling.label(0).entries()) == [(0, 1), (1, 2), (2, 3)]

    def test_double_fill_rejected(self):
        acc = LabelAccumulator(2, 1)
        acc.add_landmark_result(0, np.asarray([0]), np.asarray([1]))
        with pytest.raises(ReproError):
            acc.add_landmark_result(0, np.asarray([1]), np.asarray([1]))

    def test_missing_landmark_rejected(self):
        acc = LabelAccumulator(2, 2)
        acc.add_landmark_result(0, np.asarray([0]), np.asarray([1]))
        with pytest.raises(ReproError):
            acc.freeze()

    def test_length_mismatch_rejected(self):
        acc = LabelAccumulator(2, 1)
        with pytest.raises(ReproError):
            acc.add_landmark_result(0, np.asarray([0, 1]), np.asarray([1]))


class TestHighwayCoverLabelling:
    def _tiny(self):
        acc = LabelAccumulator(3, 2)
        acc.add_landmark_result(0, np.asarray([1]), np.asarray([4]))
        acc.add_landmark_result(1, np.asarray([1, 2]), np.asarray([2, 3]))
        return acc.freeze()

    def test_average_label_size(self):
        labelling = self._tiny()
        assert labelling.average_label_size() == pytest.approx(3 / 3)

    def test_label_arrays_views(self):
        labelling = self._tiny()
        idx, dist = labelling.label_arrays(1)
        assert idx.tolist() == [0, 1]
        assert dist.tolist() == [4, 2]

    def test_equality(self):
        assert self._tiny() == self._tiny()

    def test_offset_validation(self):
        with pytest.raises(ReproError):
            HighwayCoverLabelling(
                num_vertices=2,
                num_landmarks=1,
                offsets=np.asarray([0]),
                landmark_indices=np.asarray([], dtype=np.int32),
                distances=np.asarray([], dtype=np.int32),
            )
